package index

import (
	"sync"

	"pane/internal/core"
	"pane/internal/mat"
)

// Exact is the always-correct backend: a flat candidate matrix scanned in
// parallel row blocks. Each worker keeps its own top-k accumulator over a
// contiguous block and the partial results are merged under core.Better,
// so the answer is deterministic and independent of the worker count.
type Exact struct {
	data    *mat.Dense
	threads int
}

// NewExact wraps data (one candidate vector per row) without copying; the
// caller must not mutate data afterwards. In the engine the matrix is
// derived from an immutable model version, so sharing is safe. threads is
// the search fan-out; values <= 1 scan serially.
func NewExact(data *mat.Dense, threads int) *Exact {
	if threads < 1 {
		threads = 1
	}
	return &Exact{data: data, threads: threads}
}

// Refresh returns an Exact over data with this index's search fan-out —
// the flat backend's half of the copy-on-write refresh contract. Exact
// derives no per-row state from its matrix, so the incremental work is
// entirely the caller's copy-on-write of the candidate rows (clone the
// previous version's block, patch only the dirty rows); the result is
// trivially bit-identical to NewExact(data, threads).
func (x *Exact) Refresh(data *mat.Dense) *Exact { return NewExact(data, x.threads) }

// Len returns the candidate count.
func (x *Exact) Len() int { return x.data.Rows }

// Dim returns the vector dimension.
func (x *Exact) Dim() int { return x.data.Cols }

// Kind returns KindExact.
func (x *Exact) Kind() string { return KindExact }

// minParallelRows is the per-worker row budget below which goroutine
// fan-out costs more than the scan it parallelizes.
const minParallelRows = 2048

// Search scans every candidate. See Index for the result contract.
func (x *Exact) Search(q []float64, k int, opt Options) []core.Scored {
	n := x.data.Rows
	if k > n {
		k = n
	}
	if k < 1 {
		return nil
	}
	nb := x.threads
	if lim := n / minParallelRows; nb > lim {
		nb = lim
	}
	return mergeSearch(k, n, nb, func(t *core.TopK, lo, hi int) {
		scanRows(t, x.data, q, lo, hi, opt.Skip)
	})
}

// scanRows offers rows [lo, hi) of data to t, scored by inner product
// with q.
func scanRows(t *core.TopK, data *mat.Dense, q []float64, lo, hi int, skip func(int) bool) {
	for i := lo; i < hi; i++ {
		if skip != nil && skip(i) {
			continue
		}
		t.Offer(i, mat.Dot(q, data.Row(i)))
	}
}

// mergeSearch is the fan-out/merge skeleton both backends share: it
// splits n work units into at most nb contiguous chunks, runs scan over
// each chunk with a private top-k accumulator, and merges the partial
// results under core.Better's total order — so the answer is identical
// for every worker count. nb <= 1 runs the scan inline.
func mergeSearch(k, n, nb int, scan func(t *core.TopK, lo, hi int)) []core.Scored {
	if nb <= 1 {
		t := core.GetTopK(k)
		scan(t, 0, n)
		res := t.Take()
		core.PutTopK(t)
		return res
	}
	ranges := mat.SplitRanges(n, nb)
	parts := make([][]core.Scored, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			t := core.GetTopK(k)
			scan(t, lo, hi)
			parts[i] = t.Take()
			core.PutTopK(t)
		}(i, r[0], r[1])
	}
	wg.Wait()
	final := core.GetTopK(k)
	for _, p := range parts {
		for _, s := range p {
			final.Offer(s.ID, s.Score)
		}
	}
	res := final.Take()
	core.PutTopK(final)
	return res
}
