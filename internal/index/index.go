// Package index provides top-k maximum-inner-product retrieval over a
// fixed set of candidate vectors — the serving-path complement to the
// training code in internal/core. Two backends implement one interface:
//
//   - Exact scans a flat candidate matrix with a parallel blocked kernel
//     and is always correct. For the link model the matrix is the
//     precomputed transform Z = Xb·G, so a query is a single scan with no
//     per-query O(k²) setup.
//   - IVF adds a k-means coarse quantizer (an inverted file over the same
//     vectors) for approximate sub-linear search; the recall/latency
//     trade-off is controlled per query by the number of probed lists.
//   - SQ8 keeps an additional per-row 8-bit scalar-quantized copy of the
//     candidate matrix: scans read one eighth of the bytes (the scaling
//     wall on large candidate sets is memory bandwidth, not compute),
//     and an exact float64 re-rank of the rerank*k best survivors makes
//     the final ranking near-exact — and fully exact when the re-rank
//     window covers every candidate.
//   - IVFSQ combines the two: IVF's probed-list pruning over SQ8's
//     quantized rows, with the same exact re-rank.
//
// Both backends are immutable after construction and safe for concurrent
// searches. internal/engine builds one index per model version and swaps
// whole sets atomically, so a query never observes a half-built
// structure. Each backend additionally offers a copy-on-write Refresh
// constructor for dynamic updates: given the new candidate matrix and the
// set of rows that actually changed, it produces the next immutable
// generation touching only O(Δ) state — re-wrapping the patched matrix
// (Exact), re-encoding only dirty rows (SQ8), or moving only dirty rows
// between inverted lists against the frozen coarse quantizer (IVF/IVFSQ)
// — while sharing all unchanged storage with the previous generation. All rankings use core.Better ordering (score descending,
// ties by ascending id), which makes exact and IVF results bit-for-bit
// comparable: IVF probing every list returns exactly the exact backend's
// answer.
package index

import (
	"pane/internal/core"
)

// Backend kinds reported by Kind().
const (
	KindExact   = "exact"
	KindIVF     = "ivf"
	KindSQ8     = "sq8"
	KindIVFSQ   = "ivfsq"
	KindFP16    = "fp16"
	KindIVFFP16 = "ivffp16"
)

// Options tunes one Search call.
type Options struct {
	// NProbe is the number of inverted lists an IVF search scans. Values
	// <= 0 mean the index's build-time default; values above nlist are
	// clamped. The exact and SQ8 backends ignore it.
	NProbe int
	// Rerank overrides a quantized backend's survivor multiplier: the
	// approximate scan keeps the Rerank*k best candidates by quantized
	// score and the exact re-rank picks the final k among them. Values
	// <= 0 mean the index's build-time default; the unquantized backends
	// ignore it.
	Rerank int
	// Skip, when non-nil, excludes candidate ids from the result (e.g.
	// the query node itself in link prediction).
	Skip func(id int) bool
}

// Index is a top-k retrieval structure over Len() candidate vectors of
// dimension Dim(). Search returns the k candidates with the largest inner
// product against q in core.Better order (highest score first, ties by
// ascending id); k is clamped to the candidate count. For Exact (and IVF
// probing every list) fewer than k results mean the candidate set after
// Skip was exhausted; a partial-probe IVF search may return fewer simply
// because the probed lists held fewer candidates.
type Index interface {
	Search(q []float64, k int, opt Options) []core.Scored
	Len() int
	Dim() int
	Kind() string
}
