//go:build arm64 && !noasm

package index

import "pane/internal/mat"

// Advanced SIMD (NEON) is part of the baseline ARMv8-A profile and Go's
// arm64 port already assumes it, so unlike amd64 there is no feature
// check: the vector kernel is always usable. The kernel deliberately
// sticks to baseline SMULL/SADALP rather than SDOT — the DotProd
// extension is optional pre-ARMv8.4 and detecting it portably needs OS
// hwcaps, while the widening multiply path runs everywhere at roughly
// the same cost for these vector widths.
const useDotI8SIMD = true

// dotI8SIMD computes the int32 inner product of the n int8 values at a
// and b using NEON (16-wide widening multiply, pairwise-accumulate),
// with a scalar tail inside the assembly. n must be >= 1; integer
// addition is exact, so the result is bit-identical to dotI8Generic.
// Implemented in sq8dot_arm64.s.
//
//go:noescape
func dotI8SIMD(a, b *int8, n int) int32

// DotI8ISA reports the instruction set the quantized int8 dot kernel
// dispatches to on this build and host.
func DotI8ISA() string {
	return mat.ISANEON
}
