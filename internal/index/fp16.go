package index

import (
	"fmt"
	"math"
	"math/bits"

	"pane/internal/core"
	"pane/internal/mat"
)

// Half-precision candidate storage: an IEEE 754 binary16 copy of the
// candidate matrix scanned with a decode-and-accumulate float64 kernel.
// It is the storage point between SQ8 and float64 — 2 bytes per
// dimension, a 4x traffic cut on the bandwidth-bound scan — but unlike
// SQ8 it needs NO exact re-rank: a half holds ~3.3 decimal digits, and
// at the dynamic ranges embedding coordinates live in, the score
// perturbation almost never reorders a top-k (the committed bench holds
// recall@10 at ≈ 0.999 with re-rank = none, gated on the missed-slot
// count with a binomial sampling allowance — the residual misses are
// rank-boundary ties below the 2^-11 half resolution). Two backends
// share the machinery, mirroring the SQ8 pair:
//
//   - FP16 encodes a flat matrix (the half-precision sibling of Exact);
//   - IVFFP16 encodes each inverted list of an existing IVF.
//
// Encoding is PER ELEMENT (round-to-nearest-even, no shared statistics),
// so any row slice of a matrix encodes to exactly the row slice of the
// whole matrix's encoding — the property that keeps sharded serving
// bit-for-bit equal to unsharded, and lets the engine's copy-on-write
// refresh re-encode only dirty rows. Decoding a half is EXACT in
// float64, and the scan accumulates in the one canonical order fixed by
// DotFP16Generic, so fp16 scores (and therefore rankings) are
// bit-identical across instruction sets and build tags. Unlike the
// quantized two-phase backends, fp16 scores are final: a sharded fan-out
// merges them like Exact's, no global survivor cut required.

// F64ToFP16 converts x to IEEE 754 binary16 with round-to-nearest-even,
// directly from the float64 bits (no intermediate float32, so no double
// rounding). Overflow goes to ±Inf, underflow denormalizes down to ±0,
// and NaN becomes the canonical quiet NaN.
func F64ToFP16(x float64) uint16 {
	b := math.Float64bits(x)
	sign := uint16((b >> 48) & 0x8000)
	exp := int((b >> 52) & 0x7ff)
	frac := b & (1<<52 - 1)
	if exp == 0x7ff { // Inf or NaN
		if frac != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	e := exp - 1023
	if e >= 16 { // beyond half range even before rounding
		return sign | 0x7c00
	}
	if e >= -14 {
		// Normal half range: keep the top 10 fraction bits, RNE on the
		// remaining 42. A mantissa carry ripples into the exponent (and,
		// at the very top, into Inf) by plain integer addition.
		m := frac >> 42
		rem := frac & (1<<42 - 1)
		const half = uint64(1) << 41
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(uint64(e+15)<<10+m)
	}
	// Subnormal half (or zero): the result is round(|x| / 2^-24) units of
	// the half denormal step. The 53-bit significand represents
	// |x| = sig·2^(e-52), so the unit count is sig >> (28-e), RNE on the
	// shifted-out bits. A round-up from the largest subnormal carries
	// into the smallest normal by the same integer addition.
	sig := frac | 1<<52
	shift := uint(28 - e)
	if shift >= 64 {
		return sign
	}
	m := sig >> shift
	rem := sig & (1<<shift - 1)
	half := uint64(1) << (shift - 1)
	if rem > half || (rem == half && m&1 == 1) {
		m++
	}
	return sign | uint16(m)
}

// FP16ToF64 converts an IEEE 754 binary16 value to float64. Every half
// (normal and subnormal) is exactly representable, so the conversion is
// exact — which is what makes the SIMD decode (half → float32 → float64,
// both steps exact) bit-identical to this one.
func FP16ToF64(h uint16) float64 {
	sign := uint64(h>>15) << 63
	exp := uint64(h >> 10 & 0x1f)
	m := uint64(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		if m != 0 {
			return math.Float64frombits(sign | 0x7ff8000000000000 | m<<42)
		}
		return math.Float64frombits(sign | 0x7ff0000000000000)
	case exp == 0: // zero or subnormal: value is m · 2^-24
		if m == 0 {
			return math.Float64frombits(sign)
		}
		l := bits.Len64(m) // top set bit, 1..10
		e := l - 25        // value = 1.f · 2^(l-25)
		frac := (m << uint(53-l)) & (1<<52 - 1)
		return math.Float64frombits(sign | uint64(e+1023)<<52 | frac)
	default:
		return math.Float64frombits(sign | (exp-15+1023)<<52 | m<<42)
	}
}

// EncodeFP16Rows encodes data row-major into binary16: codes[i*dim+j] is
// the half encoding of data.Row(i)[j]. Per-element and deterministic, so
// any row slice of data encodes to the corresponding slice of codes.
func EncodeFP16Rows(data *mat.Dense) []uint16 {
	codes := make([]uint16, data.Rows*data.Cols)
	dim := data.Cols
	for i := 0; i < data.Rows; i++ {
		encodeFP16RowInto(data.Row(i), codes[i*dim:(i+1)*dim])
	}
	return codes
}

// encodeFP16RowInto encodes one candidate row into c (which must have
// length len(row)) — the per-row unit EncodeFP16Rows and the incremental
// Refresh share. Stale codes in c are fully overwritten.
func encodeFP16RowInto(row []float64, c []uint16) {
	for j, v := range row {
		c[j] = F64ToFP16(v)
	}
}

// dotFP16 returns the inner product of the float64 query q with the
// half-encoded candidate row c — the fp16 scan kernel. On amd64 with
// AVX2+F16C it dispatches to a vectorized decode-and-accumulate
// (VCVTPH2PS + VCVTPS2PD + VMULPD/VADDPD over the 4-aligned prefix);
// everywhere else DotFP16Generic runs. Both follow the same canonical
// summation order, so the score is bit-identical on every build.
func dotFP16(q []float64, c []uint16) float64 {
	n := len(q)
	if useDotFP16SIMD && n >= 8 {
		if len(c) != n {
			panic("index: dotFP16 length mismatch")
		}
		p := n &^ 3
		s := dotFP16SIMD(&q[0], &c[0], p)
		for i := p; i < n; i++ {
			s += float64(q[i] * FP16ToF64(c[i]))
		}
		return s
	}
	return DotFP16Generic(q, c)
}

// DotFP16 exposes the dispatched fp16 dot kernel for the kernel
// microbenchmark (`benchexp -exp kernel`); serving paths call dotFP16
// through the FP16/IVFFP16 backends.
func DotFP16(q []float64, c []uint16) float64 { return dotFP16(q, c) }

// DotFP16Generic is the portable decode-and-accumulate kernel and the
// reference the SIMD path is tested against. It fixes the canonical
// summation order for fp16 scores: eight independent accumulators over
// 8-element blocks (two 4-lane AVX2 registers), folded pairwise, an
// optional 4-element block into the folded lanes, the (l0+l1)+(l2+l3)
// horizontal reduction, and a sequential scalar tail — with explicit
// float64 conversions pinning each product to one rounding step (no FMA
// contraction), exactly as in mat.DotGeneric.
func DotFP16Generic(q []float64, c []uint16) float64 {
	n := len(q)
	c = c[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += float64(q[i] * FP16ToF64(c[i]))
		s1 += float64(q[i+1] * FP16ToF64(c[i+1]))
		s2 += float64(q[i+2] * FP16ToF64(c[i+2]))
		s3 += float64(q[i+3] * FP16ToF64(c[i+3]))
		s4 += float64(q[i+4] * FP16ToF64(c[i+4]))
		s5 += float64(q[i+5] * FP16ToF64(c[i+5]))
		s6 += float64(q[i+6] * FP16ToF64(c[i+6]))
		s7 += float64(q[i+7] * FP16ToF64(c[i+7]))
	}
	l0, l1, l2, l3 := s0+s4, s1+s5, s2+s6, s3+s7
	if i+4 <= n {
		l0 += float64(q[i] * FP16ToF64(c[i]))
		l1 += float64(q[i+1] * FP16ToF64(c[i+1]))
		l2 += float64(q[i+2] * FP16ToF64(c[i+2]))
		l3 += float64(q[i+3] * FP16ToF64(c[i+3]))
		i += 4
	}
	s := (l0 + l1) + (l2 + l3)
	for ; i < n; i++ {
		s += float64(q[i] * FP16ToF64(c[i]))
	}
	return s
}

// FP16 is the half-precision flat backend: the binary16 encoding of the
// candidate matrix, scanned in parallel row blocks like Exact, no
// re-rank. The full float64 matrix is shared (not copied) only to carry
// the shape/refresh contract the engine expects; queries never touch it.
// Immutable after construction and safe for concurrent searches.
type FP16 struct {
	full    *mat.Dense
	codes   []uint16
	threads int
}

// NewFP16 encodes data (one candidate per row, shared with the caller —
// it must not be mutated afterwards, as with NewExact) and returns the
// half-precision backend. threads is the search fan-out, values <= 1
// scan serially.
func NewFP16(data *mat.Dense, threads int) *FP16 {
	return NewFP16FromCodes(data, EncodeFP16Rows(data), threads)
}

// NewFP16FromCodes wraps an existing encoding (e.g. one restored from a
// bundle, or a row slice of a larger matrix's encoding) instead of
// re-encoding. codes must agree with data's shape; it is shared, not
// copied. It panics on a shape mismatch — a corrupt persisted payload
// must fail loudly at build time, not skew scores at query time.
func NewFP16FromCodes(data *mat.Dense, codes []uint16, threads int) *FP16 {
	if len(codes) != data.Rows*data.Cols {
		panic(fmt.Sprintf("index: FP16 payload shape mismatch: %d codes for %dx%d",
			len(codes), data.Rows, data.Cols))
	}
	if threads < 1 {
		threads = 1
	}
	return &FP16{full: data, codes: codes, threads: threads}
}

// Len returns the candidate count.
func (f *FP16) Len() int { return f.full.Rows }

// Dim returns the vector dimension.
func (f *FP16) Dim() int { return f.full.Cols }

// Kind returns KindFP16.
func (f *FP16) Kind() string { return KindFP16 }

// Codes exposes the binary16 encoding (row-major) for persistence.
func (f *FP16) Codes() []uint16 { return f.codes }

// Refresh returns a half-precision backend over data (which must have
// this index's shape) re-encoding only the listed dirty rows; every
// other row's codes are copied from this index. Because encoding is per
// element, the result is bit-identical to NewFP16(data, threads) at
// O(|dirty|·dim) encoding cost instead of O(n·dim).
func (f *FP16) Refresh(data *mat.Dense, dirty []int) *FP16 {
	if data.Rows != f.full.Rows || data.Cols != f.full.Cols {
		panic(fmt.Sprintf("index: FP16 refresh shape mismatch: %dx%d data for %dx%d index",
			data.Rows, data.Cols, f.full.Rows, f.full.Cols))
	}
	codes := append([]uint16(nil), f.codes...)
	dim := data.Cols
	for _, r := range dirty {
		encodeFP16RowInto(data.Row(r), codes[r*dim:(r+1)*dim])
	}
	return NewFP16FromCodes(data, codes, f.threads)
}

// Search scans every candidate's half-encoded row. Scores are the
// decode-and-accumulate inner products — final, not re-ranked. See Index
// for the result contract.
func (f *FP16) Search(q []float64, k int, opt Options) []core.Scored {
	n := f.full.Rows
	if k > n {
		k = n
	}
	if k < 1 {
		return nil
	}
	nb := f.threads
	if lim := n / minParallelRows; nb > lim {
		nb = lim
	}
	return mergeSearch(k, n, nb, func(t *core.TopK, lo, hi int) {
		f.scanCodes(t, q, lo, hi, opt.Skip)
	})
}

// scanCodes offers rows [lo, hi) to t under the fp16 score, walking the
// code rows with one advancing slice like SQ8's scan.
func (f *FP16) scanCodes(t *core.TopK, q []float64, lo, hi int, skip func(int) bool) {
	dim := f.full.Cols
	rows := f.codes[lo*dim : hi*dim]
	if skip == nil {
		for i := lo; i < hi; i++ {
			t.Offer(i, dotFP16(q, rows[:dim]))
			rows = rows[dim:]
		}
		return
	}
	for i := lo; i < hi; i++ {
		row := rows[:dim]
		rows = rows[dim:]
		if skip(i) {
			continue
		}
		t.Offer(i, dotFP16(q, row))
	}
}

// String summarizes the structure for logs.
func (f *FP16) String() string {
	return fmt.Sprintf("fp16(n=%d dim=%d)", f.full.Rows, f.full.Cols)
}

// IVFFP16 layers the binary16 row encoding over an existing IVF's
// inverted lists: a query prunes to the probed lists AND scans 2-byte
// rows inside them, no re-rank. The wrapped IVF is shared (it is
// immutable), so building IVFFP16 next to IVF costs one encoding pass,
// not a second k-means.
type IVFFP16 struct {
	iv    *IVF
	full  *mat.Dense // candidates by GLOBAL id, for the refresh contract
	codes [][]uint16 // per list, aligned with iv.vecs rows
}

// NewIVFFP16 encodes each inverted list of iv. data must be the matrix
// iv was built from (row i = candidate i); it is shared, not copied.
func NewIVFFP16(iv *IVF, data *mat.Dense) *IVFFP16 {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVFFP16 data %dx%d does not match ivf n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	h := &IVFFP16{iv: iv, full: data, codes: make([][]uint16, len(iv.vecs))}
	for l, vecs := range iv.vecs {
		h.codes[l] = EncodeFP16Rows(vecs)
	}
	return h
}

// Len returns the candidate count.
func (h *IVFFP16) Len() int { return h.iv.n }

// Dim returns the vector dimension.
func (h *IVFFP16) Dim() int { return h.iv.dim }

// Kind returns KindIVFFP16.
func (h *IVFFP16) Kind() string { return KindIVFFP16 }

// IVF returns the wrapped inverted file.
func (h *IVFFP16) IVF() *IVF { return h.iv }

// Refresh layers this index's encoding onto iv, a Refresh/Rebuild
// descendant of h.IVF() over data: an inverted list whose vector block
// is shared with the wrapped IVF (pointer-equal, i.e. IVF.Refresh left
// it untouched) reuses its codes, and only rebuilt lists are re-encoded.
// The result is bit-identical to NewIVFFP16(iv, data) at
// O(affected-list rows) encoding cost.
func (h *IVFFP16) Refresh(iv *IVF, data *mat.Dense) *IVFFP16 {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVFFP16 refresh data %dx%d does not match ivf n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	out := &IVFFP16{iv: iv, full: data, codes: make([][]uint16, len(iv.vecs))}
	for l, vecs := range iv.vecs {
		if l < len(h.iv.vecs) && vecs == h.iv.vecs[l] {
			out.codes[l] = h.codes[l]
			continue
		}
		out.codes[l] = EncodeFP16Rows(vecs)
	}
	return out
}

// Search probes like IVF (Options.NProbe has the same meaning) and scans
// the probed lists' half-encoded rows. With NProbe == NList the answer
// equals FP16.Search bit for bit.
func (h *IVFFP16) Search(q []float64, k int, opt Options) []core.Scored {
	n := h.iv.n
	if k > n {
		k = n
	}
	if k < 1 {
		return nil
	}
	lists := h.iv.probeLists(q, opt.NProbe)
	return h.iv.fanScan(k, lists, func(t *core.TopK, l, lo, hi int) {
		h.scanListCodes(t, q, l, lo, hi, opt.Skip)
	})
}

// scanListCodes offers rows [lo, hi) of list l to t under the fp16
// score.
func (h *IVFFP16) scanListCodes(t *core.TopK, q []float64, l, lo, hi int, skip func(int) bool) {
	ids := h.iv.ids[l]
	codes := h.codes[l]
	dim := h.iv.dim
	for j := lo; j < hi; j++ {
		id := int(ids[j])
		if skip != nil && skip(id) {
			continue
		}
		t.Offer(id, dotFP16(q, codes[j*dim:(j+1)*dim]))
	}
}

// String summarizes the structure for logs.
func (h *IVFFP16) String() string {
	return fmt.Sprintf("ivffp16(n=%d dim=%d nlist=%d nprobe=%d)",
		h.iv.n, h.iv.dim, h.iv.NList(), h.iv.nprobe)
}
