package index

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// TestFP16RoundTripExhaustive decodes every finite binary16 pattern and
// demands the encode maps it back to itself — decode is exact and the
// decoded value is trivially the nearest half to itself. Infinities
// round-trip too; NaN payloads normalize to the canonical quiet NaN.
func TestFP16RoundTripExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := FP16ToF64(uint16(h))
		got := F64ToFP16(v)
		if math.IsNaN(v) {
			if got&0x7fff != 0x7e00 {
				t.Fatalf("NaN half %#04x re-encoded to %#04x", h, got)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("half %#04x decodes to %v, re-encodes to %#04x", h, v, got)
		}
	}
}

// TestFP16RoundToNearestEven sweeps every pair of adjacent positive
// finite halves: the exact midpoint (representable in float64, halves
// have few mantissa bits) must round to the pair's even member, and a
// one-ulp nudge either side must round to the respective neighbor.
func TestFP16RoundToNearestEven(t *testing.T) {
	for h := uint16(0); h < 0x7bff; h++ {
		lo, hi := FP16ToF64(h), FP16ToF64(h+1)
		mid := (lo + hi) / 2
		wantMid := h
		if h&1 == 1 {
			wantMid = h + 1
		}
		if got := F64ToFP16(mid); got != wantMid {
			t.Fatalf("mid(%#04x, %#04x) = %v encoded to %#04x, want %#04x", h, h+1, mid, got, wantMid)
		}
		if got := F64ToFP16(math.Nextafter(mid, lo)); got != h {
			t.Fatalf("below-mid of %#04x encoded to %#04x", h, got)
		}
		if got := F64ToFP16(math.Nextafter(mid, hi)); got != h+1 {
			t.Fatalf("above-mid of %#04x encoded to %#04x", h+1, got)
		}
	}
}

// TestFP16EncodeBoundaries pins the range edges: overflow to infinity at
// the 65520 midpoint (ties-to-even past the largest finite half), the
// subnormal/zero boundary at 2^-25, and signed zeros.
func TestFP16EncodeBoundaries(t *testing.T) {
	cases := []struct {
		x    float64
		want uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{65504, 0x7bff},                                 // largest finite half
		{65519.999999, 0x7bff},                          // below the overflow midpoint
		{65520, 0x7c00},                                 // midpoint: even side is Inf
		{1e300, 0x7c00},                                 // far overflow
		{-1e300, 0xfc00},                                //
		{math.Inf(1), 0x7c00},                           //
		{math.Inf(-1), 0xfc00},                          //
		{math.Ldexp(1, -24), 0x0001},                    // smallest subnormal
		{math.Ldexp(1, -25), 0x0000},                    // tie with zero: even side is zero
		{math.Nextafter(math.Ldexp(1, -25), 1), 0x0001}, // just above the tie
		{-math.Ldexp(1, -24), 0x8001},                   //
		{math.Ldexp(1, -14), 0x0400},                    // smallest normal
		{math.Ldexp(1023, -24), 0x03ff},                 // largest subnormal
		{1, 0x3c00},
		{-2, 0xc000},
	}
	for _, tc := range cases {
		if got := F64ToFP16(tc.x); got != tc.want {
			t.Fatalf("F64ToFP16(%v) = %#04x, want %#04x", tc.x, got, tc.want)
		}
	}
	if got := F64ToFP16(math.NaN()); got&0x7fff != 0x7e00 {
		t.Fatalf("F64ToFP16(NaN) = %#04x", got)
	}
}

// fillHalfFriendly fills dst with NaN-free values spanning the half
// range: ordinary magnitudes, values that overflow or denormalize in
// half, and signed zeros — the encode paths a real matrix exercises.
func fillHalfFriendly(rng *rand.Rand, dst []float64) {
	for i := range dst {
		switch rng.Intn(8) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = math.Copysign(0, -1)
		case 2:
			dst[i] = math.Ldexp(rng.Float64(), -20) * signOf(rng) // half-subnormal range
		case 3:
			dst[i] = (1 + rng.Float64()) * 60000 * signOf(rng) // near/over half max
		default:
			dst[i] = (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(12)-6)
		}
	}
}

func signOf(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// TestDotFP16MatchesGenericExhaustive drives the dispatched dotFP16
// against DotFP16Generic over every length 0..129 at every slice offset
// 0..3 and demands bitwise equality — the fp16 twin of the mat kernel
// sweeps. On noasm or non-F16C builds both sides run the generic kernel.
func TestDotFP16MatchesGenericExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const maxN, maxOff = 129, 4
	backQ := make([]float64, maxN+maxOff)
	backV := make([]float64, maxN+maxOff)
	backC := make([]uint16, maxN+maxOff)
	for n := 0; n <= maxN; n++ {
		for offQ := 0; offQ < maxOff; offQ++ {
			for offC := 0; offC < maxOff; offC++ {
				fillHalfFriendly(rng, backQ)
				fillHalfFriendly(rng, backV)
				for i, v := range backV {
					backC[i] = F64ToFP16(v)
				}
				q := backQ[offQ : offQ+n]
				c := backC[offC : offC+n]
				got := dotFP16(q, c)
				want := DotFP16Generic(q, c)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("dotFP16(n=%d, offQ=%d, offC=%d) = %x, generic %x", n, offQ, offC, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestFP16RecallNoRerank is the tier's serving claim: at embedding-shaped
// dynamic ranges the half-precision scan recovers the exact top-10 at ≥
// 0.999 recall with NO re-rank — the floor the CI perf gate also
// enforces on the committed bench.
func TestFP16RecallNoRerank(t *testing.T) {
	const n, dim, k, nq = 20000, 16, 10, 100
	data := mixture(n, dim, 64, 45)
	queries := mixture(nq, dim, 64, 46)
	exact := NewExact(data, 4)
	fp := NewFP16(data, 4)
	var hit, total int
	for qi := 0; qi < nq; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, k, Options{})
		got := fp.Search(q, k, Options{})
		in := make(map[int]bool, len(want))
		for _, s := range want {
			in[s.ID] = true
		}
		for _, s := range got {
			if in[s.ID] {
				hit++
			}
		}
		total += len(want)
	}
	recall := float64(hit) / float64(total)
	t.Logf("fp16 recall@%d = %.4f (no re-rank)", k, recall)
	if recall < 0.999 {
		t.Fatalf("fp16 recall@%d = %.4f < 0.999", k, recall)
	}
}

// TestFP16SearchMatchesDecodedExact pins what the fp16 score IS: the
// backend's answer must equal an exact search over the decoded
// half-precision matrix... up to the scan kernel's canonical summation
// order, so the comparison scans with dotFP16 directly. Thread counts
// and skips must not change the answer.
func TestFP16SearchMatchesDecodedExact(t *testing.T) {
	data := mixture(2500, 12, 10, 47)
	queries := mixture(20, 12, 10, 48)
	ref := NewFP16(data, 1)
	for _, threads := range []int{2, 5, 8} {
		fp := NewFP16(data, threads)
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want := ref.Search(q, 10, Options{})
			got := fp.Search(q, 10, Options{})
			if !sameScored(got, want) {
				t.Fatalf("threads=%d query %d:\n%v\nvs serial\n%v", threads, qi, got, want)
			}
		}
	}
	skip := func(id int) bool { return id%5 == 1 }
	q := queries.Row(3)
	got := ref.Search(q, 8, Options{Skip: skip})
	for _, s := range got {
		if skip(s.ID) {
			t.Fatalf("skip filter leaked id %d", s.ID)
		}
		if want := dotFP16(q, ref.Codes()[s.ID*12:(s.ID+1)*12]); math.Float64bits(want) != math.Float64bits(s.Score) {
			t.Fatalf("id %d score %v, want kernel score %v", s.ID, s.Score, want)
		}
	}
}

// TestShardedFP16EqualsUnsharded is the fp16 twin of the SQ8 sharding
// property: per-element encoding makes a row shard's codes exactly the
// row slice of the whole matrix's codes, and scores are final (no
// survivor cut), so a sharded fan-out must return bit-for-bit the
// unsharded answer at any shard count.
func TestShardedFP16EqualsUnsharded(t *testing.T) {
	data := mixture(3000, 8, 10, 53)
	queries := mixture(40, 8, 10, 54)
	whole := NewFP16(data, 2)
	for _, nShards := range []int{2, 3, 7} {
		subs := make([]Index, 0, nShards)
		for _, r := range mat.SplitRanges(data.Rows, nShards) {
			subs = append(subs, Shift(NewFP16(data.RowSlice(r[0], r[1]), 2), r[0]))
		}
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			skip := func(id int) bool { return id == qi*17 }
			want := whole.Search(q, 10, Options{Skip: skip})
			got := SearchSharded(subs, q, 10, Options{Skip: skip})
			if !sameScored(got, want) {
				t.Fatalf("shards=%d query %d:\nsharded   %v\nunsharded %v", nShards, qi, got, want)
			}
		}
	}
}

// TestEncodeFP16RowsSliceInvariance pins the property the sharding test
// rides on, directly: encoding a row slice yields exactly the
// corresponding slice of the whole encoding.
func TestEncodeFP16RowsSliceInvariance(t *testing.T) {
	data := mixture(500, 9, 6, 55)
	whole := EncodeFP16Rows(data)
	for _, r := range [][2]int{{0, 100}, {100, 350}, {350, 500}} {
		part := EncodeFP16Rows(data.RowSlice(r[0], r[1]))
		for i, c := range part {
			if c != whole[r[0]*9+i] {
				t.Fatalf("slice [%d,%d) code %d differs: %#04x vs %#04x", r[0], r[1], i, c, whole[r[0]*9+i])
			}
		}
	}
}

// TestFP16RefreshBitForBit: a dirty-row refresh must equal a from-scratch
// encode of the new matrix, code for code.
func TestFP16RefreshBitForBit(t *testing.T) {
	old := mixture(800, 10, 8, 56)
	fp := NewFP16(old, 3)
	next := mat.New(old.Rows, old.Cols)
	copy(next.Data, old.Data)
	rng := rand.New(rand.NewSource(57))
	dirty := []int{0, 17, 17, 799, 400} // duplicates allowed
	for _, r := range dirty {
		for j := range next.Row(r) {
			next.Row(r)[j] = rng.NormFloat64() * 3
		}
	}
	refreshed := fp.Refresh(next, dirty)
	fresh := NewFP16(next, 3)
	for i, c := range refreshed.Codes() {
		if c != fresh.Codes()[i] {
			t.Fatalf("refreshed code %d = %#04x, fresh %#04x", i, c, fresh.Codes()[i])
		}
	}
	q := mixture(1, 10, 8, 58).Row(0)
	if !sameScored(refreshed.Search(q, 10, Options{}), fresh.Search(q, 10, Options{})) {
		t.Fatal("refreshed search diverges from fresh build")
	}
	// Shape mismatches must panic loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shape-mismatched Refresh did not panic")
			}
		}()
		fp.Refresh(mat.New(10, 10), nil)
	}()
}

// TestIVFFP16FullProbeEqualsFP16: probing every list must recover the
// flat fp16 answer bit for bit (same kernel, same candidates, only the
// visit order differs — and scores are shard/list invariant).
func TestIVFFP16FullProbeEqualsFP16(t *testing.T) {
	data := mixture(1500, 8, 12, 63)
	queries := mixture(25, 8, 12, 64)
	flat := NewFP16(data, 4)
	iv := BuildIVF(data, IVFConfig{NList: 12, Seed: 5, Threads: 4})
	h := NewIVFFP16(iv, data)
	if h.Kind() != KindIVFFP16 || h.Len() != data.Rows || h.Dim() != data.Cols {
		t.Fatalf("ivffp16 identity: kind=%s len=%d dim=%d", h.Kind(), h.Len(), h.Dim())
	}
	for qi := 0; qi < queries.Rows; qi++ {
		q := queries.Row(qi)
		want := flat.Search(q, 10, Options{})
		got := h.Search(q, 10, Options{NProbe: iv.NList()})
		if !sameScored(got, want) {
			t.Fatalf("query %d:\nivffp16 %v\nfp16    %v", qi, got, want)
		}
	}
	// Partial probing with a skip filter still returns only unskipped ids.
	skip := func(id int) bool { return id%2 == 0 }
	res := h.Search(queries.Row(0), 5, Options{NProbe: 3, Skip: skip})
	for _, s := range res {
		if skip(s.ID) {
			t.Fatalf("skip filter leaked id %d", s.ID)
		}
	}
}

// TestIVFFP16RefreshBitForBit mirrors the IVFSQ refresh property: after
// an IVF refresh, re-encoding only rebuilt lists (pointer-identity reuse
// for untouched ones) must equal a from-scratch NewIVFFP16.
func TestIVFFP16RefreshBitForBit(t *testing.T) {
	old := mixture(1200, 8, 10, 65)
	iv := BuildIVF(old, IVFConfig{NList: 10, Seed: 9, Threads: 2})
	h := NewIVFFP16(iv, old)
	next := mat.New(old.Rows, old.Cols)
	copy(next.Data, old.Data)
	rng := rand.New(rand.NewSource(66))
	dirty := []int{3, 120, 777, 1199}
	for _, r := range dirty {
		for j := range next.Row(r) {
			next.Row(r)[j] = rng.NormFloat64()
		}
	}
	iv2 := iv.Refresh(next, dirty)
	got := h.Refresh(iv2, next)
	want := NewIVFFP16(iv2, next)
	if len(got.codes) != len(want.codes) {
		t.Fatalf("list count %d vs %d", len(got.codes), len(want.codes))
	}
	reused := 0
	for l := range got.codes {
		if len(got.codes[l]) != len(want.codes[l]) {
			t.Fatalf("list %d code count %d vs %d", l, len(got.codes[l]), len(want.codes[l]))
		}
		for i := range got.codes[l] {
			if got.codes[l][i] != want.codes[l][i] {
				t.Fatalf("list %d code %d differs", l, i)
			}
		}
		if l < len(iv.vecs) && iv2.vecs[l] == iv.vecs[l] {
			reused++
			if &got.codes[l][0] != &h.codes[l][0] {
				t.Fatalf("untouched list %d was re-encoded instead of reused", l)
			}
		}
	}
	if reused == 0 {
		t.Fatal("refresh rebuilt every list; the reuse path was never exercised")
	}
	q := mixture(1, 8, 10, 67).Row(0)
	if !sameScored(got.Search(q, 10, Options{NProbe: iv2.NList()}), want.Search(q, 10, Options{NProbe: iv2.NList()})) {
		t.Fatal("refreshed ivffp16 search diverges from fresh build")
	}
}

// TestFP16DegenerateInputs walks the edge cases shared with the other
// backends: empty matrices, k clamps, zero-dimension rows.
func TestFP16DegenerateInputs(t *testing.T) {
	empty := NewFP16(mat.New(0, 8), 2)
	if res := empty.Search([]float64{1, 0, 0, 0, 0, 0, 0, 0}, 5, Options{}); len(res) != 0 {
		t.Fatalf("empty fp16 returned %v", res)
	}
	one := NewFP16(mat.FromRows([][]float64{{1, 2}}), 2)
	if res := one.Search([]float64{1, 1}, 10, Options{}); len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("k clamp: %v", res)
	}
	if res := one.Search([]float64{1, 1}, 0, Options{}); res != nil {
		t.Fatalf("k=0 returned %v", res)
	}
	zdim := NewFP16(mat.New(4, 0), 1)
	if res := zdim.Search(nil, 2, Options{}); len(res) != 2 {
		t.Fatalf("zero-dim search: %v", res)
	}
	// FromCodes shape mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shape-mismatched NewFP16FromCodes did not panic")
			}
		}()
		NewFP16FromCodes(mat.New(3, 3), make([]uint16, 5), 1)
	}()
}
