//go:build amd64 && !noasm

package index

import "pane/internal/mat"

// useDotFP16SIMD gates the vectorized fp16 decode-and-accumulate kernel.
// It needs F16C (the VCVTPH2PS half→single conversion) on top of the
// usual AVX2 + OS-saved-YMM checks; F16C predates AVX2 on both Intel and
// AMD, so in practice the pair travels together, but the check is
// explicit — a wrong guess here would be a SIGILL in the middle of a
// scan.
var useDotFP16SIMD = cpuHasF16C()

// cpuHasF16C is implemented in fp16dot_amd64.s.
func cpuHasF16C() bool

// dotFP16SIMD computes the float64 inner product of the n query values
// at q with the n half-precision codes at c, over the 4-aligned prefix
// (n must be a multiple of 4), following the canonical summation order
// fixed by DotFP16Generic; the caller adds the scalar tail. Implemented
// in fp16dot_amd64.s.
//
//go:noescape
func dotFP16SIMD(q *float64, c *uint16, n int) float64

// FP16ISA reports the instruction set the fp16 scan kernel dispatches to
// on this build and host.
func FP16ISA() string {
	if useDotFP16SIMD {
		return mat.ISAAVX2
	}
	return mat.ISAGeneric
}
