package index

import (
	"math/rand"
	"testing"

	"pane/internal/mat"
)

func randMatrix(r, c int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// shardExact splits data into s contiguous row shards and wraps each
// block's Exact index with its global base offset.
func shardExact(data *mat.Dense, s, threads int) []Index {
	ranges := mat.SplitRanges(data.Rows, s)
	subs := make([]Index, len(ranges))
	for i, r := range ranges {
		subs[i] = Shift(NewExact(data.RowSlice(r[0], r[1]), threads), r[0])
	}
	return subs
}

func TestShiftTranslatesIdsAndSkip(t *testing.T) {
	data := randMatrix(10, 4, 3)
	base := 100
	idx := Shift(NewExact(data.RowSlice(5, 10), 1), base+5)
	q := data.Row(0)

	res := idx.Search(q, 3, Options{})
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.ID < base+5 || r.ID >= base+10 {
			t.Fatalf("id %d outside shifted range [%d,%d)", r.ID, base+5, base+10)
		}
	}
	// Skip receives GLOBAL ids: excluding the top hit must drop exactly it.
	top := res[0]
	res2 := idx.Search(q, 3, Options{Skip: func(id int) bool { return id == top.ID }})
	for _, r := range res2 {
		if r.ID == top.ID {
			t.Fatalf("skipped id %d still present", top.ID)
		}
	}
	if idx.Len() != 5 || idx.Dim() != 4 || idx.Kind() != KindExact {
		t.Fatalf("metadata len=%d dim=%d kind=%q", idx.Len(), idx.Dim(), idx.Kind())
	}
}

func TestShiftZeroBaseIsIdentity(t *testing.T) {
	x := NewExact(randMatrix(4, 2, 1), 1)
	if Shift(x, 0) != Index(x) {
		t.Fatal("Shift with base 0 should return the index unchanged")
	}
}

// TestSearchShardedMatchesSingleExact is the determinism core of the
// sharded serving path: for every shard count, the fan-out/merge answer
// must be bit-for-bit identical to one Exact index over the full matrix.
func TestSearchShardedMatchesSingleExact(t *testing.T) {
	data := randMatrix(257, 6, 42) // odd size so shard boundaries are uneven
	single := NewExact(data, 2)
	rng := rand.New(rand.NewSource(7))
	for _, s := range []int{1, 2, 3, 4, 8, 16} {
		subs := shardExact(data, s, 1)
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, 6)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			skipID := rng.Intn(data.Rows)
			opt := Options{Skip: func(id int) bool { return id == skipID }}
			want := single.Search(q, 10, opt)
			got := SearchSharded(subs, q, 10, opt)
			if len(got) != len(want) {
				t.Fatalf("shards=%d: %d results, want %d", s, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d trial=%d rank=%d: %v != %v", s, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchShardedSkipsNilShards(t *testing.T) {
	data := randMatrix(20, 3, 5)
	subs := shardExact(data, 2, 1)
	subs = append(subs, nil) // a shard with no candidates in this space
	q := data.Row(0)
	want := NewExact(data, 1).Search(q, 5, Options{})
	got := SearchSharded(subs, q, 5, Options{})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %v != %v", i, got[i], want[i])
		}
	}
	if res := SearchSharded([]Index{nil, nil}, q, 5, Options{}); res != nil {
		t.Fatalf("all-nil shards returned %v", res)
	}
}

// TestSearchShardedIVFFullProbe: sharded IVF probing every list in every
// shard degenerates to sharded exact, which equals single exact.
func TestSearchShardedIVFFullProbe(t *testing.T) {
	data := randMatrix(300, 5, 9)
	single := NewExact(data, 1)
	ranges := mat.SplitRanges(data.Rows, 3)
	subs := make([]Index, len(ranges))
	maxList := 0
	for i, r := range ranges {
		iv := BuildIVF(data.RowSlice(r[0], r[1]), IVFConfig{NList: 4, Seed: 3})
		if iv.NList() > maxList {
			maxList = iv.NList()
		}
		subs[i] = Shift(iv, r[0])
	}
	q := data.Row(17)
	want := single.Search(q, 8, Options{})
	got := SearchSharded(subs, q, 8, Options{NProbe: maxList})
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %v != %v", i, got[i], want[i])
		}
	}
}
