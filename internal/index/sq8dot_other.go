//go:build !amd64

package index

// Non-amd64 builds always take the portable kernel.
const useDotI8SIMD = false

// dotI8SIMD is never called when useDotI8SIMD is false; this stub keeps
// the portable build compiling.
func dotI8SIMD(a, b *int8, n int) int32 {
	panic("index: dotI8SIMD called on a build without SIMD support")
}
