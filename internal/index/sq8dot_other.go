//go:build (!amd64 && !arm64) || noasm

package index

import "pane/internal/mat"

// Builds without a vector kernel (other architectures, or any platform
// under the noasm tag) always take the portable int8 kernel.
const useDotI8SIMD = false

// dotI8SIMD is never called when useDotI8SIMD is false; this stub keeps
// the portable build compiling.
func dotI8SIMD(a, b *int8, n int) int32 {
	panic("index: dotI8SIMD called on a build without SIMD support")
}

// DotI8ISA reports the instruction set the quantized int8 dot kernel
// dispatches to on this build and host.
func DotI8ISA() string {
	return mat.ISAGeneric
}
