package index

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// TestQuantizeRowsReconstructionBound is property (a) of the SQ8 tier:
// every element reconstructs to within half a code step of its row's
// scale (plus float32 parameter rounding), and constant rows reconstruct
// exactly up to float32.
func TestQuantizeRowsReconstructionBound(t *testing.T) {
	data := mixture(500, 12, 7, 21)
	// Mix in adversarial rows: constant, single-spike, huge range.
	copy(data.Row(0), make([]float64, 12)) // all zero
	for j := range data.Row(1) {
		data.Row(1)[j] = 3.25 // constant non-zero
	}
	data.Row(2)[5] = 1e6 // one huge outlier stretches the row range
	codes, scale, base := QuantizeRows(data)
	if len(codes) != data.Rows*data.Cols || len(scale) != data.Rows || len(base) != data.Rows {
		t.Fatalf("shape: %d codes %d scales %d bases", len(codes), len(scale), len(base))
	}
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		s, b := float64(scale[i]), float64(base[i])
		for j, v := range row {
			rec := b + s*float64(codes[i*data.Cols+j])
			bound := s/2 + 1e-5*(1+math.Abs(v))
			if d := math.Abs(v - rec); d > bound {
				t.Fatalf("row %d col %d: |%v - %v| = %v > bound %v (scale %v)", i, j, v, rec, d, bound, s)
			}
		}
	}
}

// TestSQ8FullRerankEqualsExact is property (b): when the re-rank window
// covers every candidate, the quantized backend's answer is bit-for-bit
// the exact backend's, at every thread count and with skips.
func TestSQ8FullRerankEqualsExact(t *testing.T) {
	data := mixture(2000, 8, 16, 31)
	queries := mixture(30, 8, 16, 32)
	exact := NewExact(data, 4)
	for _, threads := range []int{1, 3, 8} {
		// rerank covers n for every k used below.
		sq := NewSQ8(data, data.Rows, threads)
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want := exact.Search(q, 10, Options{})
			got := sq.Search(q, 10, Options{})
			if !sameScored(got, want) {
				t.Fatalf("threads=%d query %d:\nsq8   %v\nexact %v", threads, qi, got, want)
			}
		}
	}
	// Skip filtering under a full re-rank.
	sq := NewSQ8(data, data.Rows, 2)
	skip := func(id int) bool { return id%3 == 0 }
	q := queries.Row(0)
	if !sameScored(sq.Search(q, 7, Options{Skip: skip}), exact.Search(q, 7, Options{Skip: skip})) {
		t.Fatal("sq8 skip filter diverges from exact")
	}
	// Options.Rerank override can force the full window on a
	// default-rerank index.
	def := NewSQ8(data, 0, 2)
	if def.Rerank() != DefaultRerank {
		t.Fatalf("default rerank %d", def.Rerank())
	}
	full := def.Search(q, 10, Options{Rerank: data.Rows})
	if !sameScored(full, exact.Search(q, 10, Options{})) {
		t.Fatal("Options.Rerank override does not reach the full window")
	}
}

// TestIVFSQFullProbeFullRerankEqualsExact: the combined backend
// degenerates to exact when probing every list with a covering re-rank.
func TestIVFSQFullProbeFullRerankEqualsExact(t *testing.T) {
	data := mixture(1500, 8, 12, 33)
	queries := mixture(25, 8, 12, 34)
	exact := NewExact(data, 4)
	iv := BuildIVF(data, IVFConfig{NList: 12, Seed: 5, Threads: 4})
	sq := NewIVFSQ(iv, data, data.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, 10, Options{})
		got := sq.Search(q, 10, Options{NProbe: iv.NList()})
		if !sameScored(got, want) {
			t.Fatalf("query %d:\nivfsq %v\nexact %v", qi, got, want)
		}
	}
}

// TestSQ8DefaultRerankRecall: at the default (partial) re-rank window the
// quantized scan must still recover essentially the whole exact top-10 —
// the serving-path recall floor the CI perf gate also enforces.
func TestSQ8DefaultRerankRecall(t *testing.T) {
	const n, dim, k, nq = 20000, 16, 10, 100
	data := mixture(n, dim, 64, 41)
	queries := mixture(nq, dim, 64, 42)
	exact := NewExact(data, 4)
	sq := NewSQ8(data, 0, 4)
	var hit, total int
	for qi := 0; qi < nq; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, k, Options{})
		got := sq.Search(q, k, Options{})
		in := make(map[int]bool, len(want))
		for _, s := range want {
			in[s.ID] = true
		}
		for _, s := range got {
			if in[s.ID] {
				hit++
			}
		}
		total += len(want)
	}
	recall := float64(hit) / float64(total)
	t.Logf("sq8 recall@%d = %.4f (rerank=%d)", k, recall, sq.Rerank())
	if recall < 0.99 {
		t.Fatalf("sq8 recall@%d = %.4f < 0.99", k, recall)
	}
}

// TestShardedSQ8EqualsUnsharded is property (c), and the reason the
// quantized tier quantizes per row: a sharded fan-out over row slices of
// the matrix — each slice quantized independently, searched with the
// PARTIAL default re-rank window — must return bit-for-bit the unsharded
// answer, because the survivor cut is applied globally in MergePartials.
func TestShardedSQ8EqualsUnsharded(t *testing.T) {
	data := mixture(3000, 8, 10, 51)
	queries := mixture(40, 8, 10, 52)
	whole := NewSQ8(data, 0, 2)
	for _, nShards := range []int{2, 3, 7} {
		subs := make([]Index, 0, nShards)
		for _, r := range mat.SplitRanges(data.Rows, nShards) {
			subs = append(subs, Shift(NewSQ8(data.RowSlice(r[0], r[1]), 0, 2), r[0]))
		}
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			skip := func(id int) bool { return id == qi*13 }
			want := whole.Search(q, 10, Options{Skip: skip})
			got := SearchSharded(subs, q, 10, Options{Skip: skip})
			if !sameScored(got, want) {
				t.Fatalf("shards=%d query %d:\nsharded   %v\nunsharded %v", nShards, qi, got, want)
			}
		}
	}
}

// TestShardedSQ8SurvivorCutIsGlobal pins the mechanism behind property
// (c): a shard must contribute its full rerank*k survivor window to the
// merge (not its local top-k), so a candidate whose quantized score
// under-ranks inside one shard can still win globally on its exact score.
func TestShardedSQ8SurvivorCutIsGlobal(t *testing.T) {
	data := mixture(1000, 8, 6, 61)
	q := mixture(1, 8, 6, 62).Row(0)
	whole := NewSQ8(data, 0, 1)
	subs := []Index{
		Shift(NewSQ8(data.RowSlice(0, 400), 0, 1), 0),
		Shift(NewSQ8(data.RowSlice(400, 1000), 0, 1), 400),
	}
	mult := RerankMult(subs[0], Options{})
	if mult != DefaultRerank {
		t.Fatalf("resolved mult %d", mult)
	}
	k := 10
	parts := []Partial{
		PartialSearch(subs[0], q, k, mult, Options{}),
		PartialSearch(subs[1], q, k, mult, Options{}),
	}
	if got, want := len(parts[0].quant)+len(parts[1].quant), 2*mult*k; got != want {
		t.Fatalf("survivor windows: %d candidates, want %d", got, want)
	}
	if !sameScored(MergePartials(parts, k, mult), whole.Search(q, k, Options{})) {
		t.Fatal("MergePartials diverges from the unsharded search")
	}
}

// TestQuantizedDegenerateInputs mirrors the IVF degenerate-input
// coverage for the quantized backends.
func TestQuantizedDegenerateInputs(t *testing.T) {
	// Empty index.
	empty := NewSQ8(mat.New(0, 4), 0, 2)
	if got := empty.Search([]float64{1, 2, 3, 4}, 5, Options{}); got != nil {
		t.Fatalf("empty sq8 returned %v", got)
	}
	// Zero query: every quantized score collapses to base*0, and the
	// exact re-rank must still rank correctly (all-zero exact scores tie
	// by id).
	same := mat.New(10, 3)
	for i := 0; i < 10; i++ {
		copy(same.Row(i), []float64{2, 2, 2})
	}
	sq := NewSQ8(same, 0, 1)
	got := sq.Search([]float64{0, 0, 0}, 4, Options{})
	for i, s := range got {
		if s.ID != i || s.Score != 0 {
			t.Fatalf("zero-query order %v, want ascending ids with score 0", got)
		}
	}
	// Identical vectors, non-zero query: ascending-id ties.
	got = sq.Search([]float64{1, 0, 0}, 4, Options{})
	for i, s := range got {
		if s.ID != i || s.Score != 2 {
			t.Fatalf("tie order %v", got)
		}
	}
	// One candidate through IVFSQ.
	one := mat.FromRows([][]float64{{1, 0}})
	ivsq := NewIVFSQ(BuildIVF(one, IVFConfig{NList: 5}), one, 0)
	if got := ivsq.Search([]float64{2, 0}, 3, Options{}); len(got) != 1 || got[0].ID != 0 || got[0].Score != 2 {
		t.Fatalf("one-candidate ivfsq %v", got)
	}
}

func TestQuantizedInterfaceCompliance(t *testing.T) {
	var _ Index = NewSQ8(mat.New(1, 1), 0, 1)
	var _ Index = NewIVFSQ(BuildIVF(mat.New(1, 1), IVFConfig{}), mat.New(1, 1), 0)
	var _ quantized = NewSQ8(mat.New(1, 1), 0, 1)
	var _ quantized = NewIVFSQ(BuildIVF(mat.New(1, 1), IVFConfig{}), mat.New(1, 1), 0)
	sq := NewSQ8(mat.New(5, 3), 2, 2)
	if sq.Len() != 5 || sq.Dim() != 3 || sq.Kind() != KindSQ8 || sq.Rerank() != 2 {
		t.Fatalf("sq8 metadata: %d %d %s %d", sq.Len(), sq.Dim(), sq.Kind(), sq.Rerank())
	}
	iv := NewIVFSQ(BuildIVF(mat.New(5, 3), IVFConfig{}), mat.New(5, 3), 0)
	if iv.Len() != 5 || iv.Dim() != 3 || iv.Kind() != KindIVFSQ || iv.Rerank() != DefaultRerank {
		t.Fatalf("ivfsq metadata: %d %d %s %d", iv.Len(), iv.Dim(), iv.Kind(), iv.Rerank())
	}
	// A shifted quantized index keeps the quantized contract; a shifted
	// exact one must NOT acquire it.
	if _, ok := Shift(sq, 3).(quantized); !ok {
		t.Fatal("shifted sq8 lost the quantized contract")
	}
	if _, ok := Shift(NewExact(mat.New(5, 3), 1), 3).(quantized); ok {
		t.Fatal("shifted exact claims the quantized contract")
	}
	// dotI8 covers every unroll tail exactly.
	for n := 0; n <= 9; n++ {
		a := make([]int8, n)
		b := make([]int8, n)
		var want int32
		for i := range a {
			a[i] = int8(i - 4)
			b[i] = int8(3*i - 7)
			want += int32(a[i]) * int32(b[i])
		}
		if got := dotI8(a, b); got != want {
			t.Fatalf("dotI8 len %d = %d, want %d", n, got, want)
		}
	}
}

// TestDotI8SIMDMatchesGeneric pins the SIMD dispatch against the
// portable kernel across every length class the assembly handles (32-
// and 16-element blocks plus scalar tails) and the extreme code values,
// including -128 whose square stresses the int16 product lanes. On
// hosts without AVX2 the dispatch degenerates to the generic kernel and
// the test still passes.
func TestDotI8SIMDMatchesGeneric(t *testing.T) {
	t.Logf("useDotI8SIMD = %v", useDotI8SIMD)
	rng := rand.New(rand.NewSource(77))
	for n := 0; n <= 130; n++ {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = int8(rng.Intn(256) - 128)
		}
		if n > 0 { // plant extremes at the block edges
			a[0], b[0] = -128, -128
			a[n-1], b[n-1] = 127, -128
		}
		want := dotI8Generic(a, b)
		if got := dotI8(a, b); got != want {
			t.Fatalf("len %d: dotI8 %d != generic %d", n, got, want)
		}
	}
	// All-extreme vectors at a SIMD-heavy length: 128*128*96 stays well
	// inside int32 but maximizes every intermediate lane.
	a := make([]int8, 96)
	b := make([]int8, 96)
	for i := range a {
		a[i], b[i] = -128, -128
	}
	if got, want := dotI8(a, b), dotI8Generic(a, b); got != want {
		t.Fatalf("extremes: %d != %d", got, want)
	}
}

// TestQuantizeRowsSliceInvariance pins the property everything else
// leans on: quantizing a row slice yields exactly the corresponding
// slice of the whole matrix's encoding.
func TestQuantizeRowsSliceInvariance(t *testing.T) {
	data := mixture(300, 6, 5, 71)
	codes, scale, base := QuantizeRows(data)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		lo := rng.Intn(data.Rows - 1)
		hi := lo + 1 + rng.Intn(data.Rows-lo-1)
		sc, ss, sb := QuantizeRows(data.RowSlice(lo, hi))
		for i := range ss {
			if ss[i] != scale[lo+i] || sb[i] != base[lo+i] {
				t.Fatalf("slice [%d,%d) row %d params differ", lo, hi, i)
			}
		}
		for j := range sc {
			if sc[j] != codes[lo*data.Cols+j] {
				t.Fatalf("slice [%d,%d) code %d differs", lo, hi, j)
			}
		}
	}
}
