//go:build amd64 && !noasm

#include "textflag.h"

// func cpuHasF16C() bool
//
// F16C usability = CPUID.1:ECX.OSXSAVE[27], .AVX[28] and .F16C[29],
// XGETBV(0) reporting XMM+YMM state enabled, and CPUID.7.0:EBX.AVX2[5]
// (the kernel also uses 256-bit VMULPD/VADDPD).
TEXT ·cpuHasF16C(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   no
	TESTL $(1<<28), CX // AVX
	JZ   no
	TESTL $(1<<29), CX // F16C
	JZ   no
	XORL CX, CX
	XGETBV             // EDX:EAX = XCR0
	ANDL $6, AX
	CMPL AX, $6        // XMM and YMM state saved by the OS
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func dotFP16SIMD(q *float64, c *uint16, n int) float64
//
// Half-precision decode-and-accumulate over n elements (n a multiple of
// 4), following the canonical summation order fixed by DotFP16Generic:
// two 4-lane accumulators over 8-element blocks, folded, an optional
// 4-element block, then the (l0+l1)+(l2+l3) horizontal reduction. Eight
// halves decode per step: VCVTPH2PS to eight float32 lanes, VCVTPS2PD on
// each 128-bit half to float64 — both conversions exact, so the decoded
// operands match FP16ToF64 bit for bit. VMULPD+VADDPD only (no FMA), one
// rounding per product, exactly like the generic kernel.
TEXT ·dotFP16SIMD(SB), NOSPLIT, $0-32
	MOVQ q+0(FP), SI
	MOVQ c+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0 // lanes s0..s3
	VXORPD Y1, Y1, Y1 // lanes s4..s7

loop8:
	CMPQ CX, $8
	JLT  fold
	VMOVDQU (DI), X2
	VCVTPH2PS X2, Y2        // 8 halves -> 8 float32
	VCVTPS2PD X2, Y3        // low 4 -> float64 (X2 = low half of Y2)
	VEXTRACTF128 $1, Y2, X4
	VCVTPS2PD X4, Y4        // high 4 -> float64
	VMOVUPD (SI), Y5
	VMULPD  Y5, Y3, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD 32(SI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y1, Y1
	ADDQ $16, DI
	ADDQ $64, SI
	SUBQ $8, CX
	JMP  loop8

fold:
	VADDPD Y1, Y0, Y0 // l lanes = s_j + s_{j+4}
	CMPQ CX, $4
	JLT  hsum
	MOVQ (DI), X2           // 4 halves
	VCVTPH2PS X2, X2        // 4 float32 in xmm
	VCVTPS2PD X2, Y3
	VMOVUPD (SI), Y5
	VMULPD  Y5, Y3, Y3
	VADDPD  Y3, Y0, Y0

hsum:
	VHADDPD Y0, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET
