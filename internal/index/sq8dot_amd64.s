//go:build amd64 && !noasm

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 usability = CPUID.1:ECX.OSXSAVE[27] and .AVX[28], XGETBV(0)
// reporting XMM+YMM state enabled (bits 1 and 2), and CPUID.7.0:EBX.
// AVX2[5].
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   no
	TESTL $(1<<28), CX // AVX
	JZ   no
	XORL CX, CX
	XGETBV             // EDX:EAX = XCR0
	ANDL $6, AX
	CMPL AX, $6        // XMM and YMM state saved by the OS
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func dotI8SIMD(a, b *int8, n int) int32
//
// Int8 inner product: 16 elements per step are sign-extended to int16
// lanes (VPMOVSXBW) and pair-multiplied-and-summed into int32 lanes
// (VPMADDWD), accumulating in Y0; the main loop takes two such steps.
// Remaining elements run through a scalar loop. Integer addition is
// exact, so the result is bit-identical to the portable kernel for any
// lane/accumulation order. Products are bounded by 2^14, so an int32
// lane holds at least 2^17 accumulated terms — far beyond any embedding
// width here.
TEXT ·dotI8SIMD(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORL R8, R8           // running sum (int32)
	CMPQ CX, $16
	JLT  tail
	VPXOR Y0, Y0, Y0

blk32:
	CMPQ CX, $32
	JLT  blk16
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y2, Y1, Y3
	VPADDD    Y3, Y0, Y0
	VPMOVSXBW 16(SI), Y1
	VPMOVSXBW 16(DI), Y2
	VPMADDWD  Y2, Y1, Y3
	VPADDD    Y3, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JMP  blk32

blk16:
	CMPQ CX, $16
	JLT  hsum
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y2, Y1, Y3
	VPADDD    Y3, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX

hsum:
	// Reduce the 8 int32 lanes of Y0 into R8.
	VEXTRACTI128 $1, Y0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0x4E, X0, X1 // swap 64-bit halves
	VPADDD  X1, X0, X0
	VPSHUFD $0xB1, X0, X1 // swap 32-bit pairs
	VPADDD  X1, X0, X0
	VZEROUPPER
	MOVQ X0, AX
	ADDL AX, R8

tail:
	TESTQ CX, CX
	JZ    done

tloop:
	MOVBLSX (SI), R9
	MOVBLSX (DI), R10
	IMULL   R10, R9
	ADDL    R9, R8
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JNZ     tloop

done:
	MOVL R8, ret+24(FP)
	RET
