package index

import (
	"math/rand"
	"testing"

	"pane/internal/core"
	"pane/internal/mat"
)

// refreshDelta returns (newData, dirty): a clone of data with the dirty
// rows rewritten to fresh random values. dirty is ascending.
func refreshDelta(data *mat.Dense, nDirty int, seed int64) (*mat.Dense, []int) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(data.Rows)[:nDirty]
	dirty := append([]int(nil), perm...)
	for i := 1; i < len(dirty); i++ { // insertion sort; tiny n
		for j := i; j > 0 && dirty[j-1] > dirty[j]; j-- {
			dirty[j-1], dirty[j] = dirty[j], dirty[j-1]
		}
	}
	out := data.Clone()
	for _, r := range dirty {
		row := out.Row(r)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return out, dirty
}

func sameResults(t *testing.T, label string, want, got []core.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d: %v != %v", label, i, got[i], want[i])
		}
	}
}

func queries(dim, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		out[i] = q
	}
	return out
}

// TestExactRefreshMatchesFullBuild: the refreshed flat backend equals a
// fresh build over the same data (trivially, but it pins the contract).
func TestExactRefreshMatchesFullBuild(t *testing.T) {
	data := randMatrix(300, 8, 1)
	old := NewExact(data, 2)
	newData, _ := refreshDelta(data, 17, 2)
	ref := old.Refresh(newData)
	full := NewExact(newData, 2)
	for _, q := range queries(8, 10, 3) {
		sameResults(t, "exact", full.Search(q, 9, Options{}), ref.Search(q, 9, Options{}))
	}
}

// TestSQ8RefreshBitForBit: re-encoding only the dirty rows must give the
// byte-identical encoding of a full quantization pass, and identical
// search results.
func TestSQ8RefreshBitForBit(t *testing.T) {
	data := randMatrix(257, 12, 4)
	old := NewSQ8(data, 3, 2)
	for _, nDirty := range []int{1, 13, 100, 257} {
		newData, dirty := refreshDelta(data, nDirty, int64(nDirty)*7)
		ref := old.Refresh(newData, dirty)
		full := NewSQ8(newData, 3, 2)
		if len(ref.Codes()) != len(full.Codes()) {
			t.Fatalf("nDirty=%d: code lengths differ", nDirty)
		}
		for i := range full.Codes() {
			if ref.Codes()[i] != full.Codes()[i] {
				t.Fatalf("nDirty=%d: code %d differs after refresh", nDirty, i)
			}
		}
		for i := range full.Scale() {
			if ref.Scale()[i] != full.Scale()[i] || ref.Base()[i] != full.Base()[i] {
				t.Fatalf("nDirty=%d: row %d parameters differ after refresh", nDirty, i)
			}
		}
		for qi, q := range queries(12, 8, int64(nDirty)) {
			sameResults(t, "sq8", full.Search(q, 10, Options{}), ref.Search(q, 10, Options{}))
			_ = qi
		}
	}
}

// TestIVFRefreshMatchesRebuild is the inverted-file refresh property:
// moving only the dirty rows between lists must reproduce, bit for bit,
// a full reassignment of every row against the same (frozen) coarse
// quantizer — lists, ids, vectors, and stored assignment.
func TestIVFRefreshMatchesRebuild(t *testing.T) {
	data := randMatrix(400, 6, 5)
	old := BuildIVF(data, IVFConfig{NList: 8, Seed: 11, Threads: 2})
	for _, nDirty := range []int{1, 25, 150} {
		newData, dirty := refreshDelta(data, nDirty, int64(nDirty)*13)
		ref := old.Refresh(newData, dirty)
		full := old.Rebuild(newData)
		if ref.NList() != full.NList() {
			t.Fatalf("nDirty=%d: nlist differs", nDirty)
		}
		shared := 0
		for l := 0; l < ref.NList(); l++ {
			if len(ref.ids[l]) != len(full.ids[l]) {
				t.Fatalf("nDirty=%d list %d: %d members vs %d", nDirty, l, len(ref.ids[l]), len(full.ids[l]))
			}
			for j := range full.ids[l] {
				if ref.ids[l][j] != full.ids[l][j] {
					t.Fatalf("nDirty=%d list %d: member %d is %d, want %d",
						nDirty, l, j, ref.ids[l][j], full.ids[l][j])
				}
			}
			if ref.vecs[l].MaxAbsDiff(full.vecs[l]) != 0 {
				t.Fatalf("nDirty=%d list %d: vectors differ", nDirty, l)
			}
			if ref.vecs[l] == old.vecs[l] {
				shared++
			}
		}
		// One dirty row touches at most two lists; the other six or seven
		// must share storage. Larger deltas may legitimately touch every
		// list, so sharing is only asserted where it is guaranteed.
		if nDirty == 1 && shared < ref.NList()-2 {
			t.Fatalf("nDirty=1: only %d of %d lists shared storage", shared, ref.NList())
		}
		for i := range full.assigned {
			if ref.assigned[i] != full.assigned[i] {
				t.Fatalf("nDirty=%d: stored assignment differs at row %d", nDirty, i)
			}
		}
		for _, q := range queries(6, 10, int64(nDirty)+99) {
			sameResults(t, "ivf", full.Search(q, 7, Options{NProbe: 3}), ref.Search(q, 7, Options{NProbe: 3}))
		}
	}
}

// TestIVFRefreshChains: refresh-of-refresh must keep matching the frozen-
// quantizer rebuild — the stored assignment stays coherent across
// generations.
func TestIVFRefreshChains(t *testing.T) {
	data := randMatrix(200, 5, 21)
	cur := BuildIVF(data, IVFConfig{NList: 6, Seed: 3})
	for step := 0; step < 4; step++ {
		newData, dirty := refreshDelta(data, 10+step*20, int64(step)*31+1)
		cur = cur.Refresh(newData, dirty)
		full := cur.Rebuild(newData) // same frozen centroids
		for l := 0; l < cur.NList(); l++ {
			if len(cur.ids[l]) != len(full.ids[l]) {
				t.Fatalf("step %d list %d: membership diverged", step, l)
			}
			if cur.vecs[l].MaxAbsDiff(full.vecs[l]) != 0 {
				t.Fatalf("step %d list %d: vectors diverged", step, l)
			}
		}
		data = newData
	}
}

// TestIVFReseatRefreshesValuesKeepsAssignments: after a whole-matrix
// nudge (every candidate moved a little, as a low-rank Gram correction
// does), Reseat must serve the new values — full-probe search equals a
// fresh exact scan of the new matrix — while sharing the quantizer, the
// list memberships, and the stored assignment with the old index.
func TestIVFReseatRefreshesValuesKeepsAssignments(t *testing.T) {
	data := randMatrix(350, 6, 9)
	old := BuildIVF(data, IVFConfig{NList: 7, Seed: 13, Threads: 2})
	rng := rand.New(rand.NewSource(41))
	newData := data.Clone()
	for i := range newData.Data {
		newData.Data[i] += 0.01 * rng.NormFloat64()
	}
	res := old.Reseat(newData)
	if res.cents != old.cents || &res.assigned[0] != &old.assigned[0] {
		t.Fatal("Reseat must share the quantizer and the stored assignment")
	}
	for l := 0; l < res.NList(); l++ {
		if &res.ids[l][0] != &old.ids[l][0] {
			t.Fatalf("list %d: Reseat must share id storage", l)
		}
		for j, id := range res.ids[l] {
			row := res.vecs[l].Row(j)
			for p, v := range newData.Row(int(id)) {
				if row[p] != v {
					t.Fatalf("list %d row %d: vector not refreshed", l, j)
				}
			}
		}
	}
	full := NewExact(newData, 1)
	for _, q := range queries(6, 12, 43) {
		sameResults(t, "reseat full-probe",
			full.Search(q, 9, Options{}), res.Search(q, 9, Options{NProbe: 1 << 20}))
	}
	// A subsequent dirty-row Refresh must stay coherent with the retained
	// assignment: it must equal a frozen-quantizer Rebuild... of the
	// RESEATED assignment world only when assignments did not drift, so
	// assert the cheaper invariant that chains still serve exactly under
	// full probe.
	chained, dirty := refreshDelta(newData, 9, 47)
	cur := res.Refresh(chained, dirty)
	fullChained := NewExact(chained, 1)
	for _, q := range queries(6, 8, 49) {
		sameResults(t, "reseat+refresh full-probe",
			fullChained.Search(q, 9, Options{}), cur.Search(q, 9, Options{NProbe: 1 << 20}))
	}
}

// TestIVFReseatShapePanics pins the shape contract.
func TestIVFReseatShapePanics(t *testing.T) {
	data := randMatrix(50, 4, 3)
	iv := BuildIVF(data, IVFConfig{NList: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shape should panic")
		}
	}()
	iv.Reseat(randMatrix(49, 4, 3))
}

// TestIVFSQRefreshBitForBit: the quantized inverted file refreshed
// alongside its IVF must equal a from-scratch quantization of the
// rebuilt lists, and share code storage for untouched lists.
func TestIVFSQRefreshBitForBit(t *testing.T) {
	data := randMatrix(300, 7, 8)
	iv := BuildIVF(data, IVFConfig{NList: 10, Seed: 5})
	old := NewIVFSQ(iv, data, 2)
	// Two dirty rows touch at most four of the ten lists, so code reuse
	// is guaranteed for the rest.
	newData, dirty := refreshDelta(data, 2, 17)
	newIV := iv.Refresh(newData, dirty)
	ref := old.Refresh(newIV, newData)
	full := NewIVFSQ(newIV, newData, 2)
	shared := 0
	for l := range full.codes {
		if len(ref.codes[l]) != len(full.codes[l]) {
			t.Fatalf("list %d: code lengths differ", l)
		}
		for j := range full.codes[l] {
			if ref.codes[l][j] != full.codes[l][j] {
				t.Fatalf("list %d: code %d differs", l, j)
			}
		}
		for j := range full.scale[l] {
			if ref.scale[l][j] != full.scale[l][j] || ref.base[l][j] != full.base[l][j] {
				t.Fatalf("list %d row %d: parameters differ", l, j)
			}
		}
		if newIV.vecs[l] == iv.vecs[l] && &ref.codes[l][0] == &old.codes[l][0] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no list reused its quantization")
	}
	for _, q := range queries(7, 10, 55) {
		sameResults(t, "ivfsq", full.Search(q, 6, Options{NProbe: 4}), ref.Search(q, 6, Options{NProbe: 4}))
	}
}

// TestShardedRefreshMatchesUnshardedFullBuild composes the pieces the
// engine composes: per-shard copy-on-write refresh (patch dirty rows into
// a clone of the shard block, refresh each backend) fanned out through
// SearchSharded must equal one fresh unsharded build over the new matrix
// — for exact and sq8 bit for bit, and for ivf via the frozen-quantizer
// rebuild per shard.
func TestShardedRefreshMatchesUnshardedFullBuild(t *testing.T) {
	const rows, dim, shards = 311, 6, 4
	data := randMatrix(rows, dim, 33)
	ranges := mat.SplitRanges(rows, shards)

	type shard struct {
		block *mat.Dense
		ex    *Exact
		sq    *SQ8
		iv    *IVF
	}
	old := make([]shard, len(ranges))
	for i, r := range ranges {
		block := data.RowSlice(r[0], r[1]).Clone()
		old[i] = shard{
			block: block,
			ex:    NewExact(block, 1),
			sq:    NewSQ8(block, 3, 1),
			iv:    BuildIVF(block, IVFConfig{NList: 5, Seed: 9}),
		}
	}

	newData, dirty := refreshDelta(data, 23, 77)
	// Per-shard refresh: clone-and-patch the block, then refresh backends.
	exSubs := make([]Index, len(ranges))
	sqSubs := make([]Index, len(ranges))
	ivSubs := make([]Index, len(ranges))
	for i, r := range ranges {
		var local []int
		for _, d := range dirty {
			if d >= r[0] && d < r[1] {
				local = append(local, d-r[0])
			}
		}
		block := old[i].block
		if len(local) > 0 {
			block = old[i].block.Clone()
			for _, l := range local {
				copy(block.Row(l), newData.Row(r[0]+l))
			}
		}
		exSubs[i] = Shift(old[i].ex.Refresh(block), r[0])
		sqSubs[i] = Shift(old[i].sq.Refresh(block, local), r[0])
		ivSubs[i] = Shift(old[i].iv.Refresh(block, local), r[0])
	}

	fullExact := NewExact(newData, 1)
	fullSQ := NewSQ8(newData, 3, 1)
	for _, q := range queries(dim, 12, 101) {
		want := fullExact.Search(q, 11, Options{})
		sameResults(t, "sharded exact refresh", want, SearchSharded(exSubs, q, 11, Options{}))
		sameResults(t, "sharded sq8 refresh",
			fullSQ.Search(q, 11, Options{}), SearchSharded(sqSubs, q, 11, Options{}))
		// Full-probe sharded IVF over refreshed shards degenerates to exact.
		sameResults(t, "sharded ivf refresh full-probe", want,
			SearchSharded(ivSubs, q, 11, Options{NProbe: 1 << 20}))
	}
}
