//go:build amd64 && !noasm

package index

import "pane/internal/mat"

// useDotI8SIMD gates the AVX2 quantized-dot kernel. Detection runs once
// at init: CPUID-reported AVX2 plus OS support for saving YMM state
// (OSXSAVE + XGETBV), the standard pair of checks — AVX2 alone is not
// enough on kernels that do not context-switch the upper register
// halves.
var useDotI8SIMD = cpuHasAVX2()

// cpuHasAVX2 is implemented in sq8dot_amd64.s.
func cpuHasAVX2() bool

// dotI8SIMD computes the int32 inner product of the n int8 values at a
// and b using AVX2 (16-wide sign-extended multiply-add), with a scalar
// tail inside the assembly. n must be >= 1; the result is bit-identical
// to dotI8Generic. Implemented in sq8dot_amd64.s.
//
//go:noescape
func dotI8SIMD(a, b *int8, n int) int32

// DotI8ISA reports the instruction set the quantized int8 dot kernel
// dispatches to on this build and host.
func DotI8ISA() string {
	if useDotI8SIMD {
		return mat.ISAAVX2
	}
	return mat.ISAGeneric
}
