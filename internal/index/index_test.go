package index

import (
	"math/rand"
	"sort"
	"testing"

	"pane/internal/core"
	"pane/internal/mat"
)

// mixture generates n rows from nc Gaussian clusters in dim dimensions —
// the shape real embedding matrices take, and the regime IVF is built
// for.
func mixture(n, dim, nc int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	centers := mat.New(nc, dim)
	for i := range centers.Data {
		centers.Data[i] = rng.NormFloat64()
	}
	out := mat.New(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(nc))
		row := out.Row(i)
		for j := range row {
			row[j] = c[j] + 0.15*rng.NormFloat64()
		}
	}
	return out
}

// bruteTopK is the reference answer: score everything, sort under
// core.Better.
func bruteTopK(data *mat.Dense, q []float64, k int, skip func(int) bool) []core.Scored {
	var all []core.Scored
	for i := 0; i < data.Rows; i++ {
		if skip != nil && skip(i) {
			continue
		}
		all = append(all, core.Scored{ID: i, Score: mat.Dot(q, data.Row(i))})
	}
	sort.Slice(all, func(i, j int) bool { return core.Better(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func sameScored(a, b []core.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExactMatchesBruteForce(t *testing.T) {
	data := mixture(3000, 8, 12, 1)
	queries := mixture(20, 8, 12, 2)
	// Every thread count must give the identical (bit-for-bit) answer:
	// the parallel merge is deterministic.
	for _, threads := range []int{1, 2, 3, 8} {
		x := NewExact(data, threads)
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want := bruteTopK(data, q, 10, nil)
			got := x.Search(q, 10, Options{})
			if !sameScored(got, want) {
				t.Fatalf("threads=%d query %d:\ngot  %v\nwant %v", threads, qi, got, want)
			}
		}
	}
}

func TestExactSkipAndClamp(t *testing.T) {
	data := mixture(100, 4, 3, 3)
	x := NewExact(data, 2)
	q := data.Row(0)

	skip := func(id int) bool { return id%2 == 0 }
	got := x.Search(q, 10, Options{Skip: skip})
	if !sameScored(got, bruteTopK(data, q, 10, skip)) {
		t.Fatal("skip filter not honored")
	}
	for _, s := range got {
		if s.ID%2 == 0 {
			t.Fatalf("skipped id %d returned", s.ID)
		}
	}

	if got := x.Search(q, 1000, Options{}); len(got) != 100 {
		t.Fatalf("k clamp: %d results, want 100", len(got))
	}
	if got := x.Search(q, 0, Options{}); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

// TestIVFFullProbeEqualsExact is the core property: probing every list
// degenerates IVF to the exact backend, bit for bit — same scores, same
// deterministic tie order.
func TestIVFFullProbeEqualsExact(t *testing.T) {
	data := mixture(2000, 8, 16, 4)
	queries := mixture(50, 8, 16, 5)
	exact := NewExact(data, 4)
	for _, threads := range []int{1, 4} {
		iv := BuildIVF(data, IVFConfig{NList: 16, Seed: 7, Threads: threads})
		if iv.NList() != 16 {
			t.Fatalf("nlist %d", iv.NList())
		}
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want := exact.Search(q, 10, Options{})
			got := iv.Search(q, 10, Options{NProbe: iv.NList()})
			if !sameScored(got, want) {
				t.Fatalf("threads=%d query %d:\nivf   %v\nexact %v", threads, qi, got, want)
			}
		}
	}
}

func TestIVFFullProbeWithSkip(t *testing.T) {
	data := mixture(500, 6, 8, 6)
	exact := NewExact(data, 1)
	iv := BuildIVF(data, IVFConfig{NList: 8, Seed: 1})
	skip := func(id int) bool { return id == 42 || id == 7 }
	q := data.Row(42)
	want := exact.Search(q, 5, Options{Skip: skip})
	got := iv.Search(q, 5, Options{NProbe: 8, Skip: skip})
	if !sameScored(got, want) {
		t.Fatalf("skip mismatch:\nivf   %v\nexact %v", got, want)
	}
}

func TestIVFDeterministicBuild(t *testing.T) {
	data := mixture(1500, 8, 10, 8)
	a := BuildIVF(data, IVFConfig{NList: 12, Seed: 3, Threads: 4})
	b := BuildIVF(data, IVFConfig{NList: 12, Seed: 3, Threads: 1})
	q := data.Row(17)
	for _, nprobe := range []int{1, 3, 12} {
		ra := a.Search(q, 8, Options{NProbe: nprobe})
		rb := b.Search(q, 8, Options{NProbe: nprobe})
		if !sameScored(ra, rb) {
			t.Fatalf("nprobe=%d: builds differ across thread counts:\n%v\n%v", nprobe, ra, rb)
		}
	}
}

// TestIVFRecall checks the headline property on clustered data at the
// default probe budget: recall@10 ≥ 0.9 against the exact answer while
// scanning a fraction of the candidates.
func TestIVFRecall(t *testing.T) {
	const (
		n, dim, nc = 20000, 16, 64
		k          = 10
		nq         = 100
	)
	data := mixture(n, dim, nc, 10)
	queries := mixture(nq, dim, nc, 11)
	exact := NewExact(data, 4)
	iv := BuildIVF(data, IVFConfig{Seed: 12, Threads: 4}) // all defaults
	if iv.NList() < 100 || iv.DefaultNProbe() >= iv.NList()/2 {
		t.Fatalf("defaults not sub-linear: nlist=%d nprobe=%d", iv.NList(), iv.DefaultNProbe())
	}
	var hit, total int
	for qi := 0; qi < nq; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, k, Options{})
		got := iv.Search(q, k, Options{})
		in := make(map[int]bool, len(want))
		for _, s := range want {
			in[s.ID] = true
		}
		for _, s := range got {
			if in[s.ID] {
				hit++
			}
		}
		total += len(want)
	}
	recall := float64(hit) / float64(total)
	t.Logf("recall@%d = %.3f (nlist=%d nprobe=%d)", k, recall, iv.NList(), iv.DefaultNProbe())
	if recall < 0.9 {
		t.Fatalf("recall@%d = %.3f < 0.9", k, recall)
	}
}

func TestIVFDegenerateInputs(t *testing.T) {
	// Empty index.
	empty := BuildIVF(mat.New(0, 4), IVFConfig{})
	if got := empty.Search([]float64{1, 2, 3, 4}, 5, Options{}); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty Len %d", empty.Len())
	}

	// One candidate; nlist > n clamps.
	one := mat.FromRows([][]float64{{1, 0}})
	iv := BuildIVF(one, IVFConfig{NList: 50, NProbe: 50})
	if iv.NList() != 1 {
		t.Fatalf("nlist %d, want 1", iv.NList())
	}
	got := iv.Search([]float64{2, 0}, 3, Options{})
	if len(got) != 1 || got[0].ID != 0 || got[0].Score != 2 {
		t.Fatalf("one-candidate search %v", got)
	}

	// All-identical vectors: ties everywhere, order must be ascending id.
	same := mat.New(10, 3)
	for i := 0; i < 10; i++ {
		copy(same.Row(i), []float64{1, 1, 1})
	}
	iv = BuildIVF(same, IVFConfig{NList: 3, Seed: 1})
	got = iv.Search([]float64{1, 0, 0}, 4, Options{NProbe: 3})
	for i, s := range got {
		if s.ID != i {
			t.Fatalf("tie order %v, want ascending ids from 0", got)
		}
	}
}

func TestProbeGroupsBalancedAndComplete(t *testing.T) {
	// A pathologically skewed probe set: one huge list, several tiny ones.
	sizes := map[int]int{3: 50000, 7: 10, 1: 3, 9: 120}
	lists := []core.Scored{{ID: 3}, {ID: 7}, {ID: 1}, {ID: 9}}
	total := 0
	for _, s := range sizes {
		total += s
	}
	nb := 8
	groups := probeGroups(lists, func(l int) int { return sizes[l] }, total, nb)
	if len(groups) > nb {
		t.Fatalf("%d groups for nb=%d", len(groups), nb)
	}
	target := (total + nb - 1) / nb
	covered := map[int]int{}
	for _, g := range groups {
		rows := 0
		for _, seg := range g {
			if seg.lo >= seg.hi || seg.hi > sizes[seg.list] {
				t.Fatalf("bad segment %+v", seg)
			}
			rows += seg.hi - seg.lo
			covered[seg.list] += seg.hi - seg.lo
		}
		if rows > target {
			t.Fatalf("group holds %d rows, target %d — skew not split", rows, target)
		}
	}
	for l, sz := range sizes {
		if covered[l] != sz {
			t.Fatalf("list %d: covered %d of %d rows", l, covered[l], sz)
		}
	}
}

func TestExactInterfaceCompliance(t *testing.T) {
	var _ Index = NewExact(mat.New(1, 1), 1)
	var _ Index = BuildIVF(mat.New(1, 1), IVFConfig{})
	x := NewExact(mat.New(5, 3), 2)
	if x.Len() != 5 || x.Dim() != 3 || x.Kind() != KindExact {
		t.Fatalf("exact metadata: %d %d %s", x.Len(), x.Dim(), x.Kind())
	}
	iv := BuildIVF(mat.New(5, 3), IVFConfig{})
	if iv.Len() != 5 || iv.Dim() != 3 || iv.Kind() != KindIVF {
		t.Fatalf("ivf metadata: %d %d %s", iv.Len(), iv.Dim(), iv.Kind())
	}
}
