package index

import (
	"sync"
	"time"

	"pane/internal/core"
)

// Sharded serving: a large candidate matrix is split into contiguous row
// shards, each indexed independently (Exact, IVF, or a quantized
// backend), and a query fans out across the shards in parallel, merging
// the per-shard results under core.Better. Because candidate ids are
// globally unique and Better is a total order, the merged top-k of exact
// backends is the unique global top-k — bit-for-bit independent of the
// shard count (and likewise for IVF probing every list).
//
// Quantized backends need one extra move to keep that guarantee: the
// survivor CUT must happen globally, not per shard. A shard's quantized
// scan returns its rerank*k best candidates by approximate score
// (PartialSearch), the merge selects the global rerank*k best of those
// (approximate scores are shard-invariant because quantization is per
// row), and only then does the exact re-rank pick the final k
// (MergePartials). Cutting per shard instead would re-rank a
// shard-count-dependent survivor set and let the answer drift with S.
// The pieces here are the id re-basing wrapper (Shift), the per-shard
// search (PartialSearch), the deterministic merge (MergePartials), and
// the fan-out driver (SearchSharded); internal/engine owns shard
// lifecycle and per-shard rebuilds.

// shifted re-bases a sub-index built over rows [base, base+Len()) of a
// larger candidate set: result ids are translated from local to global,
// and Options.Skip keeps receiving global ids.
type shifted struct {
	idx  Index
	base int
}

// Shift wraps idx so that its local candidate ids [0, Len()) appear as
// global ids [base, base+Len()). base 0 returns idx unchanged. A
// quantized idx yields a wrapper that preserves the two-phase quantized
// contract across the id translation.
func Shift(idx Index, base int) Index {
	if base == 0 {
		return idx
	}
	s := &shifted{idx: idx, base: base}
	if q, ok := idx.(quantized); ok {
		return &shiftedQuant{shifted: s, q: q}
	}
	return s
}

// localSkip translates a global-id Skip into the wrapped index's local id
// space.
func (s *shifted) localSkip(opt Options) Options {
	if skip := opt.Skip; skip != nil {
		base := s.base
		opt.Skip = func(id int) bool { return skip(id + base) }
	}
	return opt
}

// Search translates Skip from global to local ids, runs the wrapped
// search, and re-bases the result ids to global.
func (s *shifted) Search(q []float64, k int, opt Options) []core.Scored {
	res := s.idx.Search(q, k, s.localSkip(opt))
	for i := range res {
		res[i].ID += s.base
	}
	return res
}

// Len returns the wrapped candidate count.
func (s *shifted) Len() int { return s.idx.Len() }

// Dim returns the wrapped vector dimension.
func (s *shifted) Dim() int { return s.idx.Dim() }

// Kind returns the wrapped backend kind.
func (s *shifted) Kind() string { return s.idx.Kind() }

// Unwrap exposes the wrapped index for status introspection (e.g.
// reading an IVF backend's resolved nlist through the shift).
func (s *shifted) Unwrap() Index { return s.idx }

// shiftedQuant is Shift's wrapper for quantized backends: the same id
// re-basing, plus forwarding of the two-phase search. It is a separate
// type so that a shifted Exact does NOT satisfy the quantized interface
// by accident.
type shiftedQuant struct {
	*shifted
	q quantized
}

func (s *shiftedQuant) searchQuant(q []float64, m int, opt Options) []approxScored {
	res := s.q.searchQuant(q, m, s.localSkip(opt))
	for i := range res {
		res[i].id += s.base
	}
	return res
}

func (s *shiftedQuant) rerankMult() int { return s.q.rerankMult() }

// Partial is one shard's contribution to a fanned-out top-k search:
// final-scored results for a plain backend, or the approximate survivor
// set (exact scores attached) for a quantized one. Values are produced by
// PartialSearch and consumed by MergePartials; the zero value is an empty
// contribution.
type Partial struct {
	plain []core.Scored
	quant []approxScored
}

// RerankMult resolves the survivor multiplier a quantized fan-out over
// sub uses: the per-query Options override when positive, else sub's
// build-time default, else 1 (plain backends re-rank nothing). Callers
// fanning out over several shards resolve it once — against any shard,
// since the engine builds every shard with the same configuration — and
// pass the same value to MergePartials.
func RerankMult(sub Index, opt Options) int {
	if opt.Rerank > 0 {
		return opt.Rerank
	}
	if qz, ok := sub.(quantized); ok {
		return qz.rerankMult()
	}
	return 1
}

// PartialSearch runs one shard's share of a top-k query. Plain backends
// answer with their final top-k; quantized backends return their
// mult*k-candidate survivor set so the global cut can happen in
// MergePartials.
func PartialSearch(sub Index, q []float64, k, mult int, opt Options) Partial {
	if qz, ok := sub.(quantized); ok {
		return Partial{quant: qz.searchQuant(q, rerankBudget(k, mult, sub.Len()), opt)}
	}
	return Partial{plain: sub.Search(q, k, opt)}
}

// MergePartials merges per-shard contributions into the final top-k.
// Plain parts merge directly under core.Better. Quantized parts first
// pass the GLOBAL survivor cut — the mult*k best by approximate score
// across all shards, the same cut an unsharded quantized search applies —
// and then compete on their exact scores, so sharded quantized answers
// are bit-for-bit identical to unsharded ones. mult must match the value
// PartialSearch ran with (see RerankMult).
func MergePartials(parts []Partial, k, mult int) []core.Scored {
	nQuant := 0
	for _, p := range parts {
		nQuant += len(p.quant)
	}
	final := core.GetTopK(k)
	if nQuant > 0 {
		// Global survivor cut by approximate score (ids are unique across
		// shards, so Better's tie-break makes this a total order): a
		// bounded top-m selection keeps exactly the set a full
		// sort-and-truncate would, without paying an O(N log N) comparison
		// sort per query on the serving path.
		m := rerankBudget(k, mult, nQuant)
		cut := core.GetTopK(m)
		for _, p := range parts {
			for _, c := range p.quant {
				cut.Offer(c.id, c.approx)
			}
		}
		keep := make(map[int]struct{}, cut.Len())
		for _, s := range cut.Take() {
			keep[s.ID] = struct{}{}
		}
		core.PutTopK(cut)
		for _, p := range parts {
			for _, c := range p.quant {
				if _, ok := keep[c.id]; ok {
					final.Offer(c.id, c.exact)
				}
			}
		}
	}
	for _, p := range parts {
		for _, s := range p.plain {
			final.Offer(s.ID, s.Score)
		}
	}
	res := final.Take()
	core.PutTopK(final)
	return res
}

// SearchSharded answers one top-k query by parallel fan-out over subs —
// per-shard indexes with disjoint global id ranges (see Shift) — merging
// the per-shard partial results through MergePartials. k and opt are
// passed to every shard unchanged; nil entries in subs are skipped (a
// shard with no candidates in this id space). The merged ranking equals a
// single index over the concatenated candidates: exact stays exact,
// full-probe IVF stays bit-for-bit equal to exact, and a quantized
// backend returns exactly its unsharded answer, at any shard count.
func SearchSharded(subs []Index, q []float64, k int, opt Options) []core.Scored {
	res, _, _ := SearchShardedTimed(subs, q, k, opt)
	return res
}

// SearchShardedTimed is SearchSharded plus per-stage wall times: the
// fan-out duration (the parallel per-shard searches, wg.Wait included)
// and the merge duration (MergePartials). A single live shard answers
// directly — its search time reports as the fan-out stage and the merge
// is zero, matching what actually ran.
func SearchShardedTimed(subs []Index, q []float64, k int, opt Options) (res []core.Scored, fanout, merge time.Duration) {
	live := subs[:0:0]
	for _, s := range subs {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil, 0, 0
	}
	t0 := time.Now()
	if len(live) == 1 {
		res = live[0].Search(q, k, opt)
		return res, time.Since(t0), 0
	}
	mult := RerankMult(live[0], opt)
	parts := make([]Partial, len(live))
	var wg sync.WaitGroup
	for i, s := range live {
		wg.Add(1)
		go func(i int, s Index) {
			defer wg.Done()
			parts[i] = PartialSearch(s, q, k, mult, opt)
		}(i, s)
	}
	wg.Wait()
	fanout = time.Since(t0)
	t1 := time.Now()
	res = MergePartials(parts, k, mult)
	return res, fanout, time.Since(t1)
}
