package index

import (
	"sync"

	"pane/internal/core"
)

// Sharded serving: a large candidate matrix is split into contiguous row
// shards, each indexed independently (Exact or IVF), and a query fans out
// across the shards in parallel, merging the per-shard top-k under
// core.Better. Because candidate ids are globally unique and Better is a
// total order, the merged top-k is the unique global top-k — the answer
// is bit-for-bit independent of the shard count for exact search (and for
// IVF probing every list). The two pieces here are the id re-basing
// wrapper (Shift) and the fan-out/merge driver (SearchSharded);
// internal/engine owns shard lifecycle and per-shard rebuilds.

// shifted re-bases a sub-index built over rows [base, base+Len()) of a
// larger candidate set: result ids are translated from local to global,
// and Options.Skip keeps receiving global ids.
type shifted struct {
	idx  Index
	base int
}

// Shift wraps idx so that its local candidate ids [0, Len()) appear as
// global ids [base, base+Len()). base 0 returns idx unchanged.
func Shift(idx Index, base int) Index {
	if base == 0 {
		return idx
	}
	return &shifted{idx: idx, base: base}
}

// Search translates Skip from global to local ids, runs the wrapped
// search, and re-bases the result ids to global.
func (s *shifted) Search(q []float64, k int, opt Options) []core.Scored {
	if skip := opt.Skip; skip != nil {
		base := s.base
		opt.Skip = func(id int) bool { return skip(id + base) }
	}
	res := s.idx.Search(q, k, opt)
	for i := range res {
		res[i].ID += s.base
	}
	return res
}

// Len returns the wrapped candidate count.
func (s *shifted) Len() int { return s.idx.Len() }

// Dim returns the wrapped vector dimension.
func (s *shifted) Dim() int { return s.idx.Dim() }

// Kind returns the wrapped backend kind.
func (s *shifted) Kind() string { return s.idx.Kind() }

// Unwrap exposes the wrapped index for status introspection (e.g.
// reading an IVF backend's resolved nlist through the shift).
func (s *shifted) Unwrap() Index { return s.idx }

// SearchSharded answers one top-k query by parallel fan-out over subs —
// per-shard indexes with disjoint global id ranges (see Shift) — merging
// the per-shard partial results under core.Better. k and opt are passed
// to every shard unchanged; nil entries in subs are skipped (a shard with
// no candidates in this id space). The merged ranking equals a single
// index over the concatenated candidates: exact stays exact, and
// full-probe IVF stays bit-for-bit equal to exact, at any shard count.
func SearchSharded(subs []Index, q []float64, k int, opt Options) []core.Scored {
	live := subs[:0:0]
	for _, s := range subs {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0].Search(q, k, opt)
	}
	parts := make([][]core.Scored, len(live))
	var wg sync.WaitGroup
	for i, s := range live {
		wg.Add(1)
		go func(i int, s Index) {
			defer wg.Done()
			parts[i] = s.Search(q, k, opt)
		}(i, s)
	}
	wg.Wait()
	final := core.NewTopK(k)
	for _, p := range parts {
		for _, sc := range p {
			final.Offer(sc.ID, sc.Score)
		}
	}
	return final.Take()
}
