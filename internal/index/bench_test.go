package index

import (
	"testing"

	"pane/internal/core"
	"pane/internal/mat"
)

// benchData is shared across benchmarks and built once per size.
var benchCache = map[int]*mat.Dense{}

func benchMatrix(n int) *mat.Dense {
	if m, ok := benchCache[n]; ok {
		return m
	}
	m := mixture(n, 32, 128, 99)
	benchCache[n] = m
	return m
}

func benchQueries(b *testing.B, nq int) *mat.Dense {
	b.Helper()
	return mixture(nq, 32, 128, 100)
}

// BenchmarkScanBaseline is the PR-1 shape: a fresh heap scan per query
// with no precomputation sharing.
func BenchmarkScanBaseline(b *testing.B) {
	data := benchMatrix(100000)
	qs := benchQueries(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs.Row(i % qs.Rows)
		t := core.NewTopK(10)
		for r := 0; r < data.Rows; r++ {
			t.Offer(r, mat.Dot(q, data.Row(r)))
		}
		_ = t.Take()
	}
}

func BenchmarkExactSearch(b *testing.B) {
	x := NewExact(benchMatrix(100000), 8)
	qs := benchQueries(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Search(qs.Row(i%qs.Rows), 10, Options{})
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	iv := BuildIVF(benchMatrix(100000), IVFConfig{Seed: 1, Threads: 8})
	qs := benchQueries(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = iv.Search(qs.Row(i%qs.Rows), 10, Options{})
	}
}

func BenchmarkIVFBuild(b *testing.B) {
	data := benchMatrix(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildIVF(data, IVFConfig{Seed: int64(i + 1), Threads: 8})
	}
}

func BenchmarkSQ8Search(b *testing.B) {
	sq := NewSQ8(benchMatrix(100000), 0, 8)
	qs := benchQueries(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sq.Search(qs.Row(i%qs.Rows), 10, Options{})
	}
}

func BenchmarkIVFSQSearch(b *testing.B) {
	data := benchMatrix(100000)
	sq := NewIVFSQ(BuildIVF(data, IVFConfig{Seed: 1, Threads: 8}), data, 0)
	qs := benchQueries(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sq.Search(qs.Row(i%qs.Rows), 10, Options{})
	}
}

func BenchmarkSQ8Build(b *testing.B) {
	data := benchMatrix(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSQ8(data, 0, 8)
	}
}
