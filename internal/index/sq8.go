package index

import (
	"fmt"
	"math"
	"sync"

	"pane/internal/core"
	"pane/internal/mat"
)

// Quantized candidate storage: an 8-bit scalar-quantized (SQ8) copy of
// the candidate matrix scanned with an int32-accumulating kernel, then an
// exact float64 re-rank of the best rerank*k survivors. The full scan is
// memory-bandwidth bound (each candidate costs one streamed row read and
// a handful of multiply-adds), so shrinking a row from 8 bytes per
// dimension to 1 is close to an 8x traffic cut; the re-rank touches only
// a constant number of float rows per query, which restores exact scores
// — and exact orderings whenever the true top-k survives the quantized
// cut. Two backends share the machinery:
//
//   - SQ8 quantizes a flat matrix (the quantized sibling of Exact);
//   - IVFSQ quantizes each inverted list of an existing IVF, so a query
//     pays probed-list pruning AND 1-byte rows.
//
// Quantization is PER ROW: each candidate row stores its own (scale,
// base) pair and codes c ∈ [-128, 127] reconstructing x̂[j] = base +
// scale·c[j]. Per-row parameters cost 8 bytes/row but make the quantized
// representation of a row independent of every other row — which is what
// keeps sharded serving honest: a contiguous row shard quantizes to
// exactly the row slice of the whole matrix's quantization, so a sharded
// fan-out (see MergePartials) returns bit-for-bit the unsharded answer.
// A per-column scheme would tie every code to global column statistics
// and break that equality the moment shards rebuild independently.

// DefaultRerank is the survivor multiplier when neither the build config
// nor Options.Rerank sets one: the exact re-rank considers the
// DefaultRerank*k best quantized scores. 4 is comfortably past the window
// 8-bit error needs at ≥ 0.99 recall@10 on embedding-shaped data while
// keeping the re-rank a constant, negligible cost.
const DefaultRerank = 4

// QuantizeRows computes the per-row SQ8 encoding of data: codes holds
// data.Rows*data.Cols int8 codes row-major, and row i reconstructs as
// x̂[j] = base[i] + scale[i]·codes[i*dim+j], with |x − x̂| ≤ scale[i]/2
// per element (up to float32 rounding of the stored parameters). Constant
// rows get scale 0 and exact base. The encoding is deterministic in data
// alone — no seeds, no global statistics — so any row slice of data
// quantizes to the corresponding slice of (codes, scale, base).
func QuantizeRows(data *mat.Dense) (codes []int8, scale, base []float32) {
	n, dim := data.Rows, data.Cols
	codes = make([]int8, n*dim)
	scale = make([]float32, n)
	base = make([]float32, n)
	for i := 0; i < n; i++ {
		scale[i], base[i] = quantizeRowInto(data.Row(i), codes[i*dim:(i+1)*dim])
	}
	return codes, scale, base
}

// quantizeRowInto encodes one candidate row into c (which must have
// length len(row)) and returns its (scale, base) pair — the per-row unit
// QuantizeRows and the incremental Refresh share, so a refreshed row's
// encoding is bit-identical to a full re-quantization's. c may hold stale
// codes from a previous version; every element is overwritten.
func quantizeRowInto(row []float64, c []int8) (scale, base float32) {
	if len(row) == 0 {
		return 0, 0
	}
	mn, mx := row[0], row[0]
	for _, v := range row[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	s := float32((mx - mn) / 255)
	if s == 0 {
		for j := range c {
			c[j] = 0 // x̂ = base for every element
		}
		return 0, float32(mn)
	}
	base = float32(mn + 128*float64(s))
	inv := 1 / float64(s)
	for j, v := range row {
		q := math.Round((v - mn) * inv) // nearest of 256 levels
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		c[j] = int8(int(q) - 128)
	}
	return s, base
}

// dotI8 returns the int32 inner product of two equal-length int8 code
// vectors — the quantized scan kernel. On amd64 with AVX2 it dispatches
// to a vectorized implementation (sign-extend to int16 lanes, VPMADDWD
// pair-accumulate into int32 lanes — 16 multiply-adds per step); the
// portable path below is 4-way unrolled like mat.Dot. Integer
// accumulation is exact, so every path returns the identical value —
// quantized rankings do not depend on the host's instruction set. dim ≤
// 2¹⁷ cannot overflow int32 (each term is bounded by 2¹⁴).
//
// The SIMD kernel is what makes SQ8 pay off even when the float matrix
// is cache-resident: a scalar int8 multiply-add chain is no faster per
// element than the unrolled float64 one, so without it the 8x storage
// saving only shows up once the exact scan spills to memory.
func dotI8(a, b []int8) int32 {
	if useDotI8SIMD && len(a) >= 16 {
		if len(a) != len(b) {
			panic("index: dotI8 length mismatch")
		}
		return dotI8SIMD(&a[0], &b[0], len(a))
	}
	return dotI8Generic(a, b)
}

// DotI8 exposes the dispatched quantized dot kernel for the kernel
// microbenchmark (`benchexp -exp kernel`); serving paths call dotI8
// through the SQ8/IVFSQ backends.
func DotI8(a, b []int8) int32 { return dotI8(a, b) }

// DotI8Generic exposes the portable kernel the same way.
func DotI8Generic(a, b []int8) int32 { return dotI8Generic(a, b) }

// dotI8Generic is the portable kernel, and the reference the SIMD path
// is tested against.
func dotI8Generic(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	var s int32
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3 + s
}

// quantizeQuery encodes q symmetrically into dst (int8, step·dst[j] ≈
// q[j]) and returns the step together with Σ q[j], the two per-query
// constants of the quantized score
//
//	score(i) ≈ base[i]·qsum + scale[i]·step·Σ_j dst[j]·codes[i][j],
//
// whose inner sum is the pure int32 kernel above. A zero query gets step
// 0 and all-zero codes.
func quantizeQuery(q []float64, dst []int8) (step, qsum float64) {
	var mx float64
	for _, v := range q {
		qsum += v
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return 0, qsum
	}
	step = mx / 127
	inv := 1 / step
	for j, v := range q {
		c := math.Round(v * inv)
		if c > 127 {
			c = 127
		}
		if c < -127 {
			c = -127
		}
		dst[j] = int8(c)
	}
	return step, qsum
}

// i8Pool recycles the per-query quantized-query scratch so a search adds
// no steady-state allocation for it.
var i8Pool sync.Pool

func getI8(n int) []int8 {
	if p, _ := i8Pool.Get().(*[]int8); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int8, n)
}

func putI8(v []int8) { i8Pool.Put(&v) }

// approxScored is one survivor of a quantized scan: the candidate id, the
// quantized score that selected it, and its exact float64 score. The
// approximate score drives the sharded survivor merge (it is
// shard-invariant), the exact score the final ranking.
type approxScored struct {
	id            int
	approx, exact float64
}

// quantized is the two-phase contract the quantized backends implement
// and the sharded fan-out keys on: searchQuant returns the backend's m
// best candidates by quantized score, each carrying its exact score, and
// rerankMult the build-time survivor multiplier.
type quantized interface {
	searchQuant(q []float64, m int, opt Options) []approxScored
	rerankMult() int
}

// rerankBudget is the survivor-window size of one quantized search:
// mult*k, clamped to the candidate count (and guarded against overflow).
func rerankBudget(k, mult, n int) int {
	m := k * mult
	if m < k || m > n {
		m = n
	}
	return m
}

// finishRerank turns a survivor set into the final top-k under the exact
// scores, with the shared core.Better tie-break.
func finishRerank(surv []approxScored, k int) []core.Scored {
	final := core.GetTopK(k)
	for _, c := range surv {
		final.Offer(c.id, c.exact)
	}
	res := final.Take()
	core.PutTopK(final)
	return res
}

// SQ8 is the quantized flat backend: the full float64 candidate matrix
// (shared, not copied — for the exact re-rank) plus its per-row int8
// encoding. Immutable after construction and safe for concurrent
// searches.
type SQ8 struct {
	full    *mat.Dense
	codes   []int8
	scale   []float32
	base    []float32
	rerank  int
	threads int
}

// NewSQ8 quantizes data (one candidate per row, shared with the caller —
// it must not be mutated afterwards, as with NewExact) and returns the
// quantized backend. rerank <= 0 means DefaultRerank; threads is the
// search fan-out, values <= 1 scan serially.
func NewSQ8(data *mat.Dense, rerank, threads int) *SQ8 {
	codes, scale, base := QuantizeRows(data)
	return NewSQ8FromCodes(data, codes, scale, base, rerank, threads)
}

// NewSQ8FromCodes wraps an existing encoding (e.g. one restored from a
// bundle, or a row slice of a larger matrix's encoding) instead of
// re-quantizing. The slices must agree with data's shape; they are shared,
// not copied. It panics on a shape mismatch — a corrupt persisted payload
// must fail loudly at build time, not skew scores at query time.
func NewSQ8FromCodes(data *mat.Dense, codes []int8, scale, base []float32, rerank, threads int) *SQ8 {
	if len(codes) != data.Rows*data.Cols || len(scale) != data.Rows || len(base) != data.Rows {
		panic(fmt.Sprintf("index: SQ8 payload shape mismatch: %d codes, %d scales, %d bases for %dx%d",
			len(codes), len(scale), len(base), data.Rows, data.Cols))
	}
	if rerank <= 0 {
		rerank = DefaultRerank
	}
	if threads < 1 {
		threads = 1
	}
	return &SQ8{full: data, codes: codes, scale: scale, base: base, rerank: rerank, threads: threads}
}

// Len returns the candidate count.
func (s *SQ8) Len() int { return s.full.Rows }

// Dim returns the vector dimension.
func (s *SQ8) Dim() int { return s.full.Cols }

// Kind returns KindSQ8.
func (s *SQ8) Kind() string { return KindSQ8 }

// Rerank returns the build-time survivor multiplier.
func (s *SQ8) Rerank() int { return s.rerank }

// Codes exposes the int8 encoding (row-major) for persistence.
func (s *SQ8) Codes() []int8 { return s.codes }

// Scale exposes the per-row code step for persistence.
func (s *SQ8) Scale() []float32 { return s.scale }

// Base exposes the per-row reconstruction offset for persistence.
func (s *SQ8) Base() []float32 { return s.base }

func (s *SQ8) rerankMult() int { return s.rerank }

// Refresh returns a quantized backend over data (which must have this
// index's shape) re-encoding only the listed dirty rows; every other
// row's codes and parameters are copied from this index. The contract is
// the copy-on-write refresh shared by all backends: rows not listed in
// dirty must be value-identical to the rows this index was built from.
// Because quantization is per row, the result is bit-identical to
// NewSQ8(data, rerank, threads) at O(|dirty|·dim) encoding cost instead
// of O(n·dim).
func (s *SQ8) Refresh(data *mat.Dense, dirty []int) *SQ8 {
	if data.Rows != s.full.Rows || data.Cols != s.full.Cols {
		panic(fmt.Sprintf("index: SQ8 refresh shape mismatch: %dx%d data for %dx%d index",
			data.Rows, data.Cols, s.full.Rows, s.full.Cols))
	}
	codes := append([]int8(nil), s.codes...)
	scale := append([]float32(nil), s.scale...)
	base := append([]float32(nil), s.base...)
	dim := data.Cols
	for _, r := range dirty {
		scale[r], base[r] = quantizeRowInto(data.Row(r), codes[r*dim:(r+1)*dim])
	}
	return NewSQ8FromCodes(data, codes, scale, base, s.rerank, s.threads)
}

// Search scans the quantized rows for the rerank*k best approximate
// scores, then re-ranks those survivors exactly. With rerank*k >= Len()
// every candidate survives and the answer equals Exact.Search bit for
// bit. See Index for the result contract.
func (s *SQ8) Search(q []float64, k int, opt Options) []core.Scored {
	n := s.full.Rows
	if k > n {
		k = n
	}
	if k < 1 {
		return nil
	}
	mult := opt.Rerank
	if mult <= 0 {
		mult = s.rerank
	}
	return finishRerank(s.searchQuant(q, rerankBudget(k, mult, n), opt), k)
}

// searchQuant is SQ8's half of the quantized two-phase contract: the m
// best candidates by quantized score, exact scores attached.
func (s *SQ8) searchQuant(q []float64, m int, opt Options) []approxScored {
	n := s.full.Rows
	if m > n {
		m = n
	}
	if m < 1 || n == 0 {
		return nil
	}
	qq := getI8(s.full.Cols)
	step, qsum := quantizeQuery(q, qq)
	nb := s.threads
	if lim := n / minParallelRows; nb > lim {
		nb = lim
	}
	approx := mergeSearch(m, n, nb, func(t *core.TopK, lo, hi int) {
		s.scanCodes(t, qq, step, qsum, lo, hi, opt.Skip)
	})
	putI8(qq)
	return attachExact(approx, q, s.full)
}

// scanCodes offers rows [lo, hi) to t under the quantized score. The
// code rows are walked with one advancing slice (no per-row index
// arithmetic or bounds re-derivation) and the skip-free case takes a
// branchless-per-row fast path — at ~1 byte per dimension the scan is
// cheap enough that per-row overhead shows up in profiles.
func (s *SQ8) scanCodes(t *core.TopK, qq []int8, step, qsum float64, lo, hi int, skip func(int) bool) {
	dim := s.full.Cols
	rows := s.codes[lo*dim : hi*dim]
	scale, base := s.scale[lo:hi], s.base[lo:hi]
	if skip == nil {
		for i := range scale {
			d := float64(dotI8(qq, rows[:dim]))
			rows = rows[dim:]
			t.Offer(lo+i, float64(base[i])*qsum+float64(scale[i])*step*d)
		}
		return
	}
	for i := range scale {
		row := rows[:dim]
		rows = rows[dim:]
		if skip(lo + i) {
			continue
		}
		d := float64(dotI8(qq, row))
		t.Offer(lo+i, float64(base[i])*qsum+float64(scale[i])*step*d)
	}
}

// attachExact computes the exact score of each survivor against the full
// float64 rows — the same mat.Dot the Exact backend scans with, so a
// survivor's re-ranked score is bit-identical to its exact-backend score.
func attachExact(approx []core.Scored, q []float64, full *mat.Dense) []approxScored {
	out := make([]approxScored, len(approx))
	for i, a := range approx {
		out[i] = approxScored{id: a.ID, approx: a.Score, exact: mat.Dot(q, full.Row(a.ID))}
	}
	return out
}

// String summarizes the structure for logs.
func (s *SQ8) String() string {
	return fmt.Sprintf("sq8(n=%d dim=%d rerank=%d)", s.full.Rows, s.full.Cols, s.rerank)
}

// IVFSQ layers SQ8 row encoding over an existing IVF's inverted lists: a
// query prunes to the probed lists AND scans 1-byte rows inside them,
// with the same exact re-rank on top. The wrapped IVF is shared (it is
// immutable), so building IVFSQ next to IVF costs one quantization pass,
// not a second k-means.
type IVFSQ struct {
	iv     *IVF
	full   *mat.Dense // candidates by GLOBAL id, for the re-rank
	codes  [][]int8   // per list, aligned with iv.vecs rows
	scale  [][]float32
	base   [][]float32
	rerank int
}

// NewIVFSQ quantizes each inverted list of iv. data must be the matrix iv
// was built from (row i = candidate i); it is shared for the re-rank
// pass, not copied. rerank <= 0 means DefaultRerank.
func NewIVFSQ(iv *IVF, data *mat.Dense, rerank int) *IVFSQ {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVFSQ data %dx%d does not match ivf n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	if rerank <= 0 {
		rerank = DefaultRerank
	}
	sq := &IVFSQ{
		iv: iv, full: data, rerank: rerank,
		codes: make([][]int8, len(iv.vecs)),
		scale: make([][]float32, len(iv.vecs)),
		base:  make([][]float32, len(iv.vecs)),
	}
	for l, vecs := range iv.vecs {
		sq.codes[l], sq.scale[l], sq.base[l] = QuantizeRows(vecs)
	}
	return sq
}

// Len returns the candidate count.
func (sq *IVFSQ) Len() int { return sq.iv.n }

// Dim returns the vector dimension.
func (sq *IVFSQ) Dim() int { return sq.iv.dim }

// Kind returns KindIVFSQ.
func (sq *IVFSQ) Kind() string { return KindIVFSQ }

// Rerank returns the build-time survivor multiplier.
func (sq *IVFSQ) Rerank() int { return sq.rerank }

// IVF returns the wrapped inverted file.
func (sq *IVFSQ) IVF() *IVF { return sq.iv }

func (sq *IVFSQ) rerankMult() int { return sq.rerank }

// Refresh layers this index's quantization onto iv, a Refresh/Rebuild
// descendant of sq.IVF() over data: an inverted list whose vector block
// is shared with the wrapped IVF (pointer-equal, i.e. IVF.Refresh left it
// untouched) reuses its codes, and only rebuilt lists are re-quantized.
// The result is bit-identical to NewIVFSQ(iv, data, rerank) at
// O(affected-list rows) encoding cost.
func (sq *IVFSQ) Refresh(iv *IVF, data *mat.Dense) *IVFSQ {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVFSQ refresh data %dx%d does not match ivf n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	out := &IVFSQ{
		iv: iv, full: data, rerank: sq.rerank,
		codes: make([][]int8, len(iv.vecs)),
		scale: make([][]float32, len(iv.vecs)),
		base:  make([][]float32, len(iv.vecs)),
	}
	for l, vecs := range iv.vecs {
		if l < len(sq.iv.vecs) && vecs == sq.iv.vecs[l] {
			out.codes[l], out.scale[l], out.base[l] = sq.codes[l], sq.scale[l], sq.base[l]
			continue
		}
		out.codes[l], out.scale[l], out.base[l] = QuantizeRows(vecs)
	}
	return out
}

// Search probes like IVF (Options.NProbe has the same meaning), scans the
// probed lists' quantized rows for the rerank*k best approximate scores,
// and re-ranks those exactly. With NProbe == NList and rerank*k >= Len()
// the answer equals Exact.Search bit for bit.
func (sq *IVFSQ) Search(q []float64, k int, opt Options) []core.Scored {
	n := sq.iv.n
	if k > n {
		k = n
	}
	if k < 1 {
		return nil
	}
	mult := opt.Rerank
	if mult <= 0 {
		mult = sq.rerank
	}
	return finishRerank(sq.searchQuant(q, rerankBudget(k, mult, n), opt), k)
}

// searchQuant is IVFSQ's half of the quantized two-phase contract.
func (sq *IVFSQ) searchQuant(q []float64, m int, opt Options) []approxScored {
	iv := sq.iv
	if m > iv.n {
		m = iv.n
	}
	if m < 1 || iv.n == 0 {
		return nil
	}
	qq := getI8(iv.dim)
	step, qsum := quantizeQuery(q, qq)
	lists := iv.probeLists(q, opt.NProbe)
	approx := iv.fanScan(m, lists, func(t *core.TopK, l, lo, hi int) {
		sq.scanListCodes(t, l, lo, hi, qq, step, qsum, opt.Skip)
	})
	putI8(qq)
	return attachExact(approx, q, sq.full)
}

// scanListCodes offers rows [lo, hi) of list l to t under the quantized
// score.
func (sq *IVFSQ) scanListCodes(t *core.TopK, l, lo, hi int, qq []int8, step, qsum float64, skip func(int) bool) {
	ids := sq.iv.ids[l]
	codes, scale, base := sq.codes[l], sq.scale[l], sq.base[l]
	dim := sq.iv.dim
	for j := lo; j < hi; j++ {
		id := int(ids[j])
		if skip != nil && skip(id) {
			continue
		}
		d := float64(dotI8(qq, codes[j*dim:(j+1)*dim]))
		t.Offer(id, float64(base[j])*qsum+float64(scale[j])*step*d)
	}
}

// String summarizes the structure for logs.
func (sq *IVFSQ) String() string {
	return fmt.Sprintf("ivfsq(n=%d dim=%d nlist=%d nprobe=%d rerank=%d)",
		sq.iv.n, sq.iv.dim, sq.iv.NList(), sq.iv.nprobe, sq.rerank)
}
