package index

import (
	"fmt"
	"math"
	"math/rand"

	"pane/internal/core"
	"pane/internal/mat"
)

// IVFConfig tunes BuildIVF. Zero values pick defaults scaled to the
// candidate count n.
type IVFConfig struct {
	// NList is the number of coarse clusters (inverted lists). 0 means
	// round(sqrt(n)); values are clamped to [1, n].
	NList int
	// NProbe is the default number of lists scanned per search, clamped
	// to [1, NList]. 0 means max(1, NList/8) — roughly an 8x reduction in
	// scanned candidates at high recall on clustered data.
	NProbe int
	// Iters is the number of Lloyd iterations on the training sample.
	// 0 means 10.
	Iters int
	// Sample caps the k-means training set; training on a sample and then
	// assigning all candidates in one parallel pass keeps builds cheap on
	// large n. 0 means 64·NList.
	Sample int
	// Seed drives sampling and seeding; builds are deterministic in
	// (data, config).
	Seed int64
	// Threads is the build/search parallelism; <= 1 runs serially.
	Threads int
}

// IVF is the approximate backend: candidates are partitioned into
// inverted lists by a k-means coarse quantizer, and a search scans only
// the nprobe lists whose centroids have the largest inner product with
// the query. Probing all lists degenerates to the exact answer.
type IVF struct {
	dim      int
	n        int
	nprobe   int
	threads  int
	cents    *mat.Dense   // nlist x dim centroids
	ids      [][]int32    // per-list candidate ids, ascending
	vecs     []*mat.Dense // per-list contiguous candidate vectors (row j = ids[j])
	assigned []int32      // per-row home list (assigned[i] = list of candidate i)
}

// BuildIVF clusters data (one candidate per row) into an inverted file.
// data is copied list-by-list, so the caller may keep using it; builds
// with the same data and config are bit-for-bit reproducible.
func BuildIVF(data *mat.Dense, cfg IVFConfig) *IVF {
	n, dim := data.Rows, data.Cols
	nlist := cfg.NList
	if nlist <= 0 {
		nlist = int(math.Round(math.Sqrt(float64(n))))
	}
	if nlist < 1 {
		nlist = 1
	}
	if nlist > n {
		nlist = n
	}
	nprobe := cfg.NProbe
	if nprobe <= 0 {
		nprobe = nlist / 8
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	iv := &IVF{dim: dim, n: n, nprobe: nprobe, threads: threads}
	if n == 0 {
		iv.cents = mat.New(0, dim)
		return iv
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 10
	}
	sample := cfg.Sample
	if sample <= 0 {
		sample = 64 * nlist
	}
	if sample < nlist {
		sample = nlist
	}

	// Training sample: all rows when small, otherwise a seeded uniform
	// subset. The permutation also provides distinct initial centroid
	// positions (distinct rows, not necessarily distinct values).
	rng := rand.New(rand.NewSource(cfg.Seed))
	train := make([]int, 0, sample)
	if n <= sample {
		for i := 0; i < n; i++ {
			train = append(train, i)
		}
	} else {
		train = rng.Perm(n)[:sample]
	}
	iv.cents = mat.New(nlist, dim)
	for c := 0; c < nlist; c++ {
		copy(iv.cents.Row(c), data.Row(train[c%len(train)]))
	}

	// Lloyd iterations on the sample: parallel nearest-centroid
	// assignment (by L2 distance), serial centroid recomputation so the
	// reduction order — and therefore the result — is fixed.
	assignTrain := make([]int32, len(train))
	for it := 0; it < iters; it++ {
		iv.assign(data, train, assignTrain)
		counts := make([]int, nlist)
		sums := mat.New(nlist, dim)
		for j, row := range train {
			c := assignTrain[j]
			counts[c]++
			mat.AxpyVec(1, data.Row(row), sums.Row(int(c)))
		}
		for c := 0; c < nlist; c++ {
			if counts[c] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			dst := iv.cents.Row(c)
			src := sums.Row(c)
			inv := 1 / float64(counts[c])
			for d := range dst {
				dst[d] = src[d] * inv
			}
		}
	}

	// Final pass: assign every candidate and materialize the lists with
	// contiguous vector copies for cache-friendly scans.
	assign := make([]int32, n)
	iv.assign(data, nil, assign)
	iv.populate(data, assign)
	return iv
}

// populate materializes the inverted lists of iv from a complete per-row
// assignment: per-list ascending id lists plus contiguous vector copies
// (row j of vecs[l] = data row ids[l][j]). The assignment is retained so
// an incremental Refresh knows each row's previous home list.
func (iv *IVF) populate(data *mat.Dense, assign []int32) {
	nlist := iv.cents.Rows
	counts := make([]int, nlist)
	for _, c := range assign {
		counts[c]++
	}
	iv.assigned = assign
	iv.ids = make([][]int32, nlist)
	iv.vecs = make([]*mat.Dense, nlist)
	for c := 0; c < nlist; c++ {
		iv.ids[c] = make([]int32, 0, counts[c])
		iv.vecs[c] = mat.New(counts[c], iv.dim)
	}
	for i := range assign {
		c := assign[i]
		copy(iv.vecs[c].Row(len(iv.ids[c])), data.Row(i))
		iv.ids[c] = append(iv.ids[c], int32(i))
	}
}

// Rebuild re-indexes data (same shape as the build data) against iv's
// existing coarse quantizer: every row is reassigned to its nearest
// centroid and the inverted lists are rebuilt, sharing only the
// centroids. It is the frozen-quantizer full build an incremental Refresh
// must reproduce bit for bit — retraining the quantizer is a build-time
// decision (BuildIVF), not a refresh-time one, exactly as inverted-file
// systems keep a trained coarse quantizer across vector updates.
func (iv *IVF) Rebuild(data *mat.Dense) *IVF {
	if data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVF rebuild dim %d does not match index dim %d", data.Cols, iv.dim))
	}
	out := &IVF{dim: iv.dim, n: data.Rows, nprobe: iv.nprobe, threads: iv.threads, cents: iv.cents}
	assign := make([]int32, data.Rows)
	out.assign(data, nil, assign)
	out.populate(data, assign)
	return out
}

// Refresh returns an index over data in which only the listed dirty rows
// (ascending global ids) have been re-examined: each is reassigned to its
// nearest centroid, and only the inverted lists a dirty row left, joined,
// or stayed in are rebuilt — every untouched list shares its id and
// vector storage with this index. The caller contracts that every row NOT
// listed is value-identical to the row this index holds; under that
// contract the result is bit-identical to Rebuild(data) at O(|dirty| ·
// nlist + affected-list rows) cost instead of O(n · nlist).
func (iv *IVF) Refresh(data *mat.Dense, dirty []int) *IVF {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVF refresh data %dx%d does not match index n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	if len(dirty) == 0 {
		return iv
	}
	for j, r := range dirty {
		if r < 0 || r >= iv.n || (j > 0 && dirty[j-1] >= r) {
			panic(fmt.Sprintf("index: IVF refresh dirty rows must be ascending ids in [0,%d)", iv.n))
		}
	}
	newAssign := make([]int32, len(dirty))
	iv.assign(data, dirty, newAssign)

	nlist := iv.cents.Rows
	changed := make([]bool, nlist)
	assigned := append([]int32(nil), iv.assigned...)
	dirtySet := make(map[int32]bool, len(dirty))
	added := make(map[int32][]int32) // per new list, dirty members, ascending
	for j, r := range dirty {
		changed[iv.assigned[r]] = true
		changed[newAssign[j]] = true
		assigned[r] = newAssign[j]
		dirtySet[int32(r)] = true
		added[newAssign[j]] = append(added[newAssign[j]], int32(r))
	}

	out := &IVF{
		dim: iv.dim, n: iv.n, nprobe: iv.nprobe, threads: iv.threads,
		cents: iv.cents, assigned: assigned,
		ids:  make([][]int32, nlist),
		vecs: make([]*mat.Dense, nlist),
	}
	for l := 0; l < nlist; l++ {
		if !changed[l] {
			out.ids[l] = iv.ids[l]
			out.vecs[l] = iv.vecs[l]
			continue
		}
		// Survivors (clean old members, already ascending) merged with the
		// dirty rows now assigned here; vectors copied fresh from data so a
		// dirty row that stayed in its list still gets its new values.
		keep := make([]int32, 0, len(iv.ids[l])+len(added[int32(l)]))
		for _, id := range iv.ids[l] {
			if !dirtySet[id] {
				keep = append(keep, id)
			}
		}
		ids := mergeAscending(keep, added[int32(l)])
		vecs := mat.New(len(ids), iv.dim)
		for j, id := range ids {
			copy(vecs.Row(j), data.Row(int(id)))
		}
		out.ids[l] = ids
		out.vecs[l] = vecs
	}
	return out
}

// Reseat returns an index over data in which every row's vector values
// are refreshed but every assignment is retained: the coarse quantizer,
// the per-list id slices, and the per-row assignment are shared with this
// index, and only the contiguous per-list vector copies are rebuilt. It
// is the right refresh after a low-rank correction that nudges every
// candidate at once (an attribute-delta Gram correction moves all n rows
// by a small amount) — reassigning all rows would cost O(n · nlist) for
// home lists that almost never change. A row whose nearest centroid DID
// drift across the correction stays in its old list until the next
// Rebuild; the serving layer bounds the resulting recall drift with its
// update bench gate.
func (iv *IVF) Reseat(data *mat.Dense) *IVF {
	if data.Rows != iv.n || data.Cols != iv.dim {
		panic(fmt.Sprintf("index: IVF reseat data %dx%d does not match index n=%d dim=%d",
			data.Rows, data.Cols, iv.n, iv.dim))
	}
	out := &IVF{
		dim: iv.dim, n: iv.n, nprobe: iv.nprobe, threads: iv.threads,
		cents: iv.cents, assigned: iv.assigned, ids: iv.ids,
		vecs: make([]*mat.Dense, len(iv.vecs)),
	}
	for l, ids := range iv.ids {
		vecs := mat.New(len(ids), iv.dim)
		for j, id := range ids {
			copy(vecs.Row(j), data.Row(int(id)))
		}
		out.vecs[l] = vecs
	}
	return out
}

// mergeAscending merges two ascending, disjoint int32 slices.
func mergeAscending(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// assign writes the nearest centroid (squared L2, ties to the lowest
// centroid index) of each listed row into out. rows == nil means all rows
// of data, with out[i] for row i; otherwise out[j] corresponds to
// rows[j]. Runs in parallel blocks over the rows.
func (iv *IVF) assign(data *mat.Dense, rows []int, out []int32) {
	nlist := iv.cents.Rows
	// Precompute |c|²; argmin over c of |x−c|² = argmin (|c|² − 2·x·c).
	cn := make([]float64, nlist)
	for c := 0; c < nlist; c++ {
		r := iv.cents.Row(c)
		cn[c] = mat.Dot(r, r)
	}
	total := len(out)
	mat.ParallelRanges(total, iv.threads, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := j
			if rows != nil {
				row = rows[j]
			}
			x := data.Row(row)
			best, bestScore := int32(0), math.Inf(1)
			for c := 0; c < nlist; c++ {
				s := cn[c] - 2*mat.Dot(x, iv.cents.Row(c))
				if s < bestScore {
					best, bestScore = int32(c), s
				}
			}
			out[j] = best
		}
	})
}

// Len returns the candidate count.
func (iv *IVF) Len() int { return iv.n }

// Dim returns the vector dimension.
func (iv *IVF) Dim() int { return iv.dim }

// Kind returns KindIVF.
func (iv *IVF) Kind() string { return KindIVF }

// NList returns the number of inverted lists.
func (iv *IVF) NList() int { return iv.cents.Rows }

// DefaultNProbe returns the build-time default probe count.
func (iv *IVF) DefaultNProbe() int { return iv.nprobe }

// Search probes the opt.NProbe (default DefaultNProbe) lists whose
// centroids score highest by inner product with q, then scans only those
// lists. See Index for the result contract; with NProbe == NList the
// answer equals Exact.Search bit for bit.
func (iv *IVF) Search(q []float64, k int, opt Options) []core.Scored {
	if k > iv.n {
		k = iv.n
	}
	if k < 1 || iv.n == 0 {
		return nil
	}
	lists := iv.probeLists(q, opt.NProbe)
	return iv.fanScan(k, lists, func(t *core.TopK, l, lo, hi int) {
		iv.scanList(t, l, lo, hi, q, opt.Skip)
	})
}

// probeLists ranks every centroid by inner product with q — the standard
// probe order for inner-product metrics — and returns the nprobe best
// (<= 0 means the build-time default; above nlist clamps).
func (iv *IVF) probeLists(q []float64, nprobe int) []core.Scored {
	if nprobe <= 0 {
		nprobe = iv.nprobe
	}
	if nprobe > iv.cents.Rows {
		nprobe = iv.cents.Rows
	}
	lt := core.GetTopK(nprobe)
	for c := 0; c < iv.cents.Rows; c++ {
		lt.Offer(c, mat.Dot(q, iv.cents.Row(c)))
	}
	lists := lt.Take()
	core.PutTopK(lt)
	return lists
}

// fanScan runs scan over every row of the probed lists and keeps the k
// best offers. The fan-out is over row-weighted groups of list segments:
// splitting by probed ROW count (not list count) keeps workers balanced
// when list sizes are skewed — one huge cluster cannot serialize the
// search behind a single goroutine — and a segment boundary may fall
// inside a list. Both the float and the quantized list scans share this
// skeleton.
func (iv *IVF) fanScan(k int, lists []core.Scored, scan func(t *core.TopK, l, lo, hi int)) []core.Scored {
	probedRows := 0
	for _, l := range lists {
		probedRows += len(iv.ids[l.ID])
	}
	nb := iv.threads
	if lim := probedRows / minParallelRows; nb > lim {
		nb = lim
	}
	if nb <= 1 {
		t := core.GetTopK(k)
		for _, l := range lists {
			scan(t, l.ID, 0, len(iv.ids[l.ID]))
		}
		res := t.Take()
		core.PutTopK(t)
		return res
	}
	groups := probeGroups(lists, func(l int) int { return len(iv.ids[l]) }, probedRows, nb)
	return mergeSearch(k, len(groups), len(groups), func(t *core.TopK, lo, hi int) {
		for _, g := range groups[lo:hi] {
			for _, seg := range g {
				scan(t, seg.list, seg.lo, seg.hi)
			}
		}
	})
}

// probeSeg is a contiguous row range [lo, hi) of one inverted list.
type probeSeg struct {
	list, lo, hi int
}

// probeGroups packs the probed lists' rows into at most nb groups of
// near-equal row count, splitting within a list where a boundary falls.
func probeGroups(lists []core.Scored, size func(int) int, totalRows, nb int) [][]probeSeg {
	target := (totalRows + nb - 1) / nb
	groups := make([][]probeSeg, 0, nb)
	var cur []probeSeg
	acc := 0
	for _, l := range lists {
		sz := size(l.ID)
		for pos := 0; pos < sz; {
			take := target - acc
			if rem := sz - pos; take > rem {
				take = rem
			}
			cur = append(cur, probeSeg{list: l.ID, lo: pos, hi: pos + take})
			pos += take
			acc += take
			if acc == target {
				groups = append(groups, cur)
				cur, acc = nil, 0
			}
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// scanList offers rows [lo, hi) of list l to t.
func (iv *IVF) scanList(t *core.TopK, l, lo, hi int, q []float64, skip func(int) bool) {
	ids, vecs := iv.ids[l], iv.vecs[l]
	for j := lo; j < hi; j++ {
		id := int(ids[j])
		if skip != nil && skip(id) {
			continue
		}
		t.Offer(id, mat.Dot(q, vecs.Row(j)))
	}
}

// String summarizes the structure for logs.
func (iv *IVF) String() string {
	return fmt.Sprintf("ivf(n=%d dim=%d nlist=%d nprobe=%d)", iv.n, iv.dim, iv.NList(), iv.nprobe)
}
