//go:build arm64 && !noasm

#include "textflag.h"

// func dotI8SIMD(a, b *int8, n int) int32
//
// Int8 inner product on baseline NEON: 16 elements per step are widened
// and multiplied into int16 lanes (SMULL low half, SMULL2 high half),
// then pairwise-accumulated into two int32x4 accumulators (SADALP).
// Remaining elements run through a scalar loop. Products are bounded by
// 2^14, a SADALP pair sum by 2^15, and each int32 lane accumulates two
// pair sums per 16-element step — exact for any dimension this engine
// serves, and integer addition is order-independent, so the result is
// bit-identical to dotI8Generic.
//
// Go's arm64 assembler has no SMULL/SMULL2/SADALP/ADDV vector
// mnemonics, so those four are WORD-encoded (A64 encodings noted inline;
// register fields Rd=bits 4:0, Rn=9:5, Rm=20:16).
TEXT ·dotI8SIMD(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	MOVW $0, R3        // running sum (int32)
	CMP  $16, R2
	BLT  tail
	VMOVI $0, V4.B16   // int32x4 accumulator, low-half products
	VMOVI $0, V5.B16   // int32x4 accumulator, high-half products

blk16:
	VLD1.P 16(R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	WORD $0x0E21C002   // SMULL  V2.8H, V0.8B, V1.8B
	WORD $0x4E21C003   // SMULL2 V3.8H, V0.16B, V1.16B
	WORD $0x4E606844   // SADALP V4.4S, V2.8H
	WORD $0x4E606865   // SADALP V5.4S, V3.8H
	SUB  $16, R2
	CMP  $16, R2
	BGE  blk16

	// Reduce the eight int32 lanes into R3.
	VADD V5.S4, V4.S4, V4.S4
	WORD $0x4EB1B884   // ADDV S4, V4.4S
	VMOV V4.S[0], R4
	ADDW R4, R3, R3

tail:
	CBZ  R2, done

tloop:
	MOVB (R0), R4
	MOVB (R1), R5
	ADD  $1, R0
	ADD  $1, R1
	MULW R5, R4, R4
	ADDW R4, R3, R3
	SUB  $1, R2
	CBNZ R2, tloop

done:
	MOVW R3, ret+24(FP)
	RET
