package dataset

import "testing"

func TestRegistryComplete(t *testing.T) {
	if len(Order) != 8 {
		t.Fatalf("Table 3 has 8 datasets, registry order has %d", len(Order))
	}
	for _, name := range Order {
		if _, err := Get(name); err != nil {
			t.Fatalf("missing dataset %q: %v", name, err)
		}
	}
	if len(Names()) != 8 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadSmallDatasets(t *testing.T) {
	for _, name := range SmallOrder {
		g, info, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N != info.Cfg.N || g.D != info.Cfg.D {
			t.Fatalf("%s: generated shape %dx%d != config %dx%d", name, g.N, g.D, info.Cfg.N, info.Cfg.D)
		}
		if info.Directed == info.Cfg.Undirected {
			// Directed datasets must not be generated undirected and vice versa.
			t.Fatalf("%s: directedness flag inconsistent", name)
		}
		st := g.Stats()
		if st.LabelKinds != info.Cfg.Communities {
			t.Fatalf("%s: %d label kinds, config says %d", name, st.LabelKinds, info.Cfg.Communities)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _, err := Load("cora")
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := Load("cora")
	if a.M() != b.M() || a.NNZAttr() != b.NNZAttr() {
		t.Fatal("Load is not deterministic")
	}
}
