// Package dataset registers the scaled synthetic stand-ins for the eight
// real datasets of Table 3 in the paper. Shapes (n, d, density, label
// counts, directedness) mirror the originals at a scale this container can
// process; the two "massive" entries (TWeibo, MAG) are represented by the
// largest configurations that keep the full experiment suite under a few
// minutes, plus the scaling sweeps in the benchmarks.
package dataset

import (
	"fmt"
	"sort"

	"pane/internal/datagen"
	"pane/internal/graph"
)

// Info pairs a dataset name with its generator configuration and the
// original statistics from Table 3 for reporting.
type Info struct {
	Cfg      datagen.Config
	PaperN   string // original |V| for the Table 3 printout
	PaperE   string // original |EV|
	PaperR   string // original |R|
	PaperER  string // original |ER|
	PaperL   string // original |L|
	Directed bool
}

// registry lists the stand-ins in Table 3 order.
var registry = map[string]Info{
	"cora": {
		Cfg: datagen.Config{
			Name: "cora", N: 2700, AvgOutDeg: 2, D: 300, AttrsPer: 18,
			Communities: 7, Seed: 101,
		},
		PaperN: "2.7K", PaperE: "5.4K", PaperR: "1.4K", PaperER: "49.2K", PaperL: "7",
		Directed: true,
	},
	"citeseer": {
		Cfg: datagen.Config{
			Name: "citeseer", N: 3300, AvgOutDeg: 1.5, D: 500, AttrsPer: 30,
			Communities: 6, Seed: 102,
		},
		PaperN: "3.3K", PaperE: "4.7K", PaperR: "3.7K", PaperER: "105.2K", PaperL: "6",
		Directed: true,
	},
	"facebook": {
		Cfg: datagen.Config{
			Name: "facebook", N: 4000, AvgOutDeg: 11, D: 250, AttrsPer: 8,
			Communities: 24, MultiLabel: true, Undirected: true, Seed: 103,
		},
		PaperN: "4K", PaperE: "88.2K", PaperR: "1.3K", PaperER: "33.3K", PaperL: "193",
		Directed: false,
	},
	"pubmed": {
		Cfg: datagen.Config{
			Name: "pubmed", N: 9800, AvgOutDeg: 2.3, D: 250, AttrsPer: 50,
			Communities: 3, Seed: 104,
		},
		PaperN: "19.7K", PaperE: "44.3K", PaperR: "0.5K", PaperER: "988K", PaperL: "3",
		Directed: true,
	},
	"flickr": {
		Cfg: datagen.Config{
			Name: "flickr", N: 3800, AvgOutDeg: 31, D: 600, AttrsPer: 12,
			Communities: 9, Undirected: true, Seed: 105,
		},
		PaperN: "7.6K", PaperE: "479.5K", PaperR: "12.1K", PaperER: "182.5K", PaperL: "9",
		Directed: false,
	},
	"googleplus": {
		Cfg: datagen.Config{
			Name: "googleplus", N: 20000, AvgOutDeg: 25, D: 800, AttrsPer: 28,
			Communities: 50, MultiLabel: true, Seed: 106,
		},
		PaperN: "107.6K", PaperE: "13.7M", PaperR: "15.9K", PaperER: "300.6M", PaperL: "468",
		Directed: true,
	},
	"tweibo": {
		Cfg: datagen.Config{
			Name: "tweibo", N: 40000, AvgOutDeg: 11, D: 400, AttrsPer: 4,
			Communities: 8, Seed: 107,
		},
		PaperN: "2.3M", PaperE: "50.7M", PaperR: "1.7K", PaperER: "16.8M", PaperL: "8",
		Directed: true,
	},
	"mag": {
		Cfg: datagen.Config{
			Name: "mag", N: 60000, AvgOutDeg: 8, D: 500, AttrsPer: 4,
			Communities: 20, MultiLabel: true, Seed: 108,
		},
		PaperN: "59.3M", PaperE: "978.2M", PaperR: "2K", PaperER: "434.4M", PaperL: "100",
		Directed: true,
	},
}

// Order is the presentation order of Table 3.
var Order = []string{"cora", "citeseer", "facebook", "pubmed", "flickr", "googleplus", "tweibo", "mag"}

// SmallOrder lists the five datasets the parameter studies (Figures 5-8)
// use.
var SmallOrder = []string{"cora", "citeseer", "facebook", "pubmed", "flickr"}

// Names returns the registered dataset names sorted alphabetically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the registration for name.
func Get(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("dataset: unknown dataset %q (known: %v)", name, Names())
	}
	return info, nil
}

// Load generates the stand-in graph for name.
func Load(name string) (*graph.Graph, Info, error) {
	info, err := Get(name)
	if err != nil {
		return nil, Info{}, err
	}
	g, err := datagen.Generate(info.Cfg)
	return g, info, err
}
