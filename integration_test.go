package pane_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/eval"
	"pane/internal/graph"
	"pane/internal/store"
)

// TestPipelineFilesToPredictions exercises the full user journey:
// generate a dataset → write it to text files → load it back → train
// PANE → evaluate link prediction → persist embeddings in binary form →
// reload → identical predictions.
func TestPipelineFilesToPredictions(t *testing.T) {
	dir := t.TempDir()
	g0, err := datagen.Generate(datagen.Config{
		Name: "pipe", N: 300, AvgOutDeg: 5, D: 30, AttrsPer: 3,
		Communities: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Write text files.
	paths := map[string]func(f *os.File) error{
		"g.edges":  func(f *os.File) error { return g0.WriteEdges(f) },
		"g.attrs":  func(f *os.File) error { return g0.WriteAttrs(f) },
		"g.labels": func(f *os.File) error { return g0.WriteLabels(f) },
	}
	for name, write := range paths {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	// Load back.
	g, err := graph.LoadFiles(
		filepath.Join(dir, "g.edges"), filepath.Join(dir, "g.attrs"), filepath.Join(dir, "g.labels"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != g0.N || g.M() != g0.M() || g.NNZAttr() != g0.NNZAttr() {
		t.Fatalf("file round trip changed the graph: %d/%d/%d vs %d/%d/%d",
			g.N, g.M(), g.NNZAttr(), g0.N, g0.M(), g0.NNZAttr())
	}
	// Train on a link split and evaluate.
	rng := rand.New(rand.NewSource(1))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := core.Config{K: 32, Alpha: 0.5, Eps: 0.05, Threads: 2, Seed: 1}
	emb, err := core.ParallelPANE(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := core.NewLinkScorer(emb)
	auc, ap := sp.Evaluate(scorer.Directed)
	if auc < 0.6 || ap < 0.55 {
		t.Fatalf("pipeline AUC=%v AP=%v below sanity floor", auc, ap)
	}
	// Persist and reload the embedding; predictions must be identical.
	if err := store.SaveDenseFile(filepath.Join(dir, "xf.bin"), emb.Xf); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveDenseFile(filepath.Join(dir, "xb.bin"), emb.Xb); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveDenseFile(filepath.Join(dir, "y.bin"), emb.Y); err != nil {
		t.Fatal(err)
	}
	xf, err := store.LoadDenseFile(filepath.Join(dir, "xf.bin"))
	if err != nil {
		t.Fatal(err)
	}
	xb, err := store.LoadDenseFile(filepath.Join(dir, "xb.bin"))
	if err != nil {
		t.Fatal(err)
	}
	y, err := store.LoadDenseFile(filepath.Join(dir, "y.bin"))
	if err != nil {
		t.Fatal(err)
	}
	reloaded := &core.Embedding{Xf: xf, Xb: xb, Y: y}
	rs := core.NewLinkScorer(reloaded)
	for i := 0; i < 50; i++ {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if rs.Directed(u, v) != scorer.Directed(u, v) {
			t.Fatal("reloaded embedding predicts differently")
		}
		if reloaded.AttrScore(u, rng.Intn(g.D)) != emb.AttrScore(u, rng.Intn(g.D)) {
			// Different attr drawn — rerun with same value.
			r := rng.Intn(g.D)
			if reloaded.AttrScore(u, r) != emb.AttrScore(u, r) {
				t.Fatal("reloaded attribute scores differ")
			}
		}
	}
}

// TestPipelineWeightedGraph runs the end-to-end flow on a weighted graph,
// covering the NewWeighted path through APMI and the solver.
func TestPipelineWeightedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, d := 200, 20
	var wedges []graph.WeightedEdge
	for v := 0; v < n; v++ {
		for e := 0; e < 4; e++ {
			wedges = append(wedges, graph.WeightedEdge{
				Src: v, Dst: rng.Intn(n), Weight: 0.5 + 2*rng.Float64(),
			})
		}
	}
	var attrs []graph.AttrEntry
	for v := 0; v < n; v++ {
		attrs = append(attrs, graph.AttrEntry{Node: v, Attr: v % d, Weight: 1})
	}
	g, err := graph.NewWeighted(n, d, wedges, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := core.PANE(g, core.Config{K: 16, Alpha: 0.5, Eps: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every node's own attribute should be among its top-5 scored.
	hits := 0
	for v := 0; v < n; v++ {
		for _, s := range emb.TopKAttrs(v, 5, nil) {
			if s.ID == v%d {
				hits++
				break
			}
		}
	}
	if frac := float64(hits) / float64(n); frac < 0.7 {
		t.Fatalf("own-attribute top-5 hit rate %v on weighted graph", frac)
	}
}
