// Command benchexp regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets. Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Usage:
//
//	benchexp -exp table2|table3|table4|table5|fig2|fig3|fig4a|fig4b|fig4c|fig5|fig6|fig7|fig8|all
//	         [-datasets cora,citeseer,...] [-k 128] [-threads 10] [-quick]
//
// Beyond the paper, `-exp topk` measures the serving path added in
// internal/index — brute-force scan vs exact index vs IVF vs the
// quantized SQ8/IVFSQ tiers, QPS, recall@k, and allocs/op on a generated
// graph, plus a shard-count scaling sweep — and writes the result to
// -json (default BENCH_topk.json). The run itself fails when IVF at full
// nprobe cannot reproduce the exact answer, when SQ8 recall@k falls
// below 0.99, or when sharded exact/sq8 diverges from single-shard. With
// -baseline, a committed report is compared against the fresh run and
// the process exits non-zero when IVF/SQ8/IVFSQ throughput or recall@k
// regressed by more than -tolerance — the CI perf gate.
//
// `-exp update` measures the dynamic-update path: the same random edge
// batches applied through the full pipeline (full affinity recompute +
// full warm-start sweeps + per-shard full index rebuilds) and the delta
// pipeline (frontier-restricted recurrence patch + restricted sweeps +
// incremental per-shard refresh), sweeping the delta size and reporting
// update-to-fresh-index latency with the incremental model time broken
// into affinity/CCD/transform phases, plus a node-attribute batch
// absorbed by the low-rank gram correction instead of a full rebuild.
// The result goes to -json (default BENCH_update.json); the run fails if
// the incrementally refreshed index does not answer bit-for-bit like a
// fresh build after the edge sweep (or within 0.999 top-10 recall after
// the attribute batch), and -baseline/-tolerance gate the model, index,
// and total speedups the same way the top-k gate does.
//
// `-exp kernel` microbenchmarks the four scan kernels (float64 dot,
// blocked GEMM, int8 dot, fp16 decode-and-accumulate) portable vs
// dispatched at several dims, records what each op dispatched to
// (generic/avx2/neon), and writes BENCH_kernel.json. With -baseline the
// gate fails when an op the baseline ran vectorized now dispatches to
// generic, or when a same-machine generic/dispatched speedup ratio drops
// by more than -tolerance.
//
// `-exp replicate` measures the replication tier: WAL append throughput
// under each fsync policy (always/interval/none), and how a follower
// catches up on a -repl-backlog-update leader lead — O(Δ) record replay
// over /replicate vs fetching the leader's bundle — reporting the
// crossover backlog at which the bundle starts winning (the trade
// paneserve's -follow-lag encodes). The result goes to -json (default
// BENCH_replicate.json); the run fails when the replay path touches the
// bundle fallback or converged top-k recall drops below 0.999, and
// -baseline/-tolerance gate the sync-free append speedup and the
// crossover — both same-machine ratios.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pane/internal/dataset"
	"pane/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchexp: ")
	var (
		exp       = flag.String("exp", "all", "experiment id (table2..fig8 or all)")
		datasets  = flag.String("datasets", "", "comma-separated dataset names (default: experiment-appropriate)")
		k         = flag.Int("k", 128, "space budget")
		threads   = flag.Int("threads", 10, "worker threads")
		quick     = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		seed      = flag.Int64("seed", 1, "random seed")
		topkN     = flag.Int("topk-n", 100000, "graph size for -exp topk")
		updateN   = flag.Int("update-n", 100000, "graph size for -exp update")
		replN     = flag.Int("repl-n", 20000, "graph size for -exp replicate")
		replBack  = flag.Int("repl-backlog", 10000, "follower catch-up backlog for -exp replicate")
		shards    = flag.Int("shards", 4, "serving shards for -exp update")
		rerank    = flag.Int("rerank", 0, "quantized survivor multiplier for -exp topk (0 = index default)")
		topkJSON  = flag.String("json", "", "output path for the -exp topk/update JSON report (default BENCH_topk.json / BENCH_update.json)")
		baseline  = flag.String("baseline", "", "committed report to gate -exp topk/update against (empty = no gate)")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional regression vs -baseline before failing")
	)
	flag.Parse()

	opt := experiments.Defaults()
	opt.K = *k
	opt.Threads = *threads
	opt.Seed = *seed

	smallSets := dataset.SmallOrder
	allSets := dataset.Order
	bigSets := []string{"googleplus", "tweibo"}
	if *quick {
		smallSets = []string{"cora", "citeseer"}
		allSets = []string{"cora", "citeseer", "facebook"}
		bigSets = []string{"facebook"}
		opt.K = 32
	}
	if *datasets != "" {
		names := strings.Split(*datasets, ",")
		smallSets, allSets, bigSets = names, names, names
	}
	// The paper's non-scalable baselines get skipped above this many
	// nodes, mirroring the "-" (did not finish) entries.
	const skipSlowAbove = 25000

	run := func(id string) {
		switch id {
		case "table2":
			experiments.PrintTable2(os.Stdout, experiments.RunTable2())
		case "table3":
			rows, err := experiments.RunTable3(allSets)
			check(err)
			experiments.PrintTable3(os.Stdout, rows)
		case "table4":
			rows, err := experiments.RunTable4(allSets, opt, skipSlowAbove)
			check(err)
			experiments.PrintMethodTable(os.Stdout, "Table 4: attribute inference", rows)
		case "table5":
			rows, err := experiments.RunTable5(allSets, opt, skipSlowAbove)
			check(err)
			experiments.PrintMethodTable(os.Stdout, "Table 5: link prediction", rows)
		case "fig2":
			fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
			if *quick {
				fracs = []float64{0.5}
			}
			rows, err := experiments.RunFig2(smallSets, fracs, opt)
			check(err)
			experiments.PrintFig2(os.Stdout, rows)
		case "fig3":
			rows, err := experiments.RunFig3(allSets, opt, skipSlowAbove)
			check(err)
			experiments.PrintFig3(os.Stdout, rows)
		case "fig4a":
			threads := []int{1, 2, 5, 10, 20}
			if *quick {
				threads = []int{1, 2, 4}
			}
			rows, err := experiments.RunFig4a(bigSets, threads, opt)
			check(err)
			experiments.PrintSpeedups(os.Stdout, rows)
		case "fig4b":
			ks := []int{16, 32, 64, 128, 256}
			if *quick {
				ks = []int{16, 64}
			}
			rows, err := experiments.RunFig4b(bigSets, ks, opt)
			check(err)
			experiments.PrintParamTimings(os.Stdout, "Figure 4b: time vs k", "k", rows)
		case "fig4c":
			epss := []float64{0.001, 0.005, 0.015, 0.05, 0.25}
			if *quick {
				epss = []float64{0.015, 0.25}
			}
			rows, err := experiments.RunFig4c(bigSets, epss, opt)
			check(err)
			experiments.PrintParamTimings(os.Stdout, "Figure 4c: time vs eps", "eps", rows)
		case "fig5", "fig6":
			params := []struct {
				name   string
				values []float64
			}{
				{"k", []float64{16, 32, 64, 128, 256}},
				{"nb", []float64{1, 2, 5, 10, 20}},
				{"eps", []float64{0.001, 0.005, 0.015, 0.05, 0.25}},
				{"alpha", []float64{0.1, 0.3, 0.5, 0.7, 0.9}},
			}
			if *quick {
				params = params[:1]
				params[0].values = []float64{16, 64}
			}
			for _, p := range params {
				attr, link, err := experiments.RunFig56(smallSets, p.name, p.values, opt)
				check(err)
				if id == "fig5" {
					experiments.PrintQuality(os.Stdout, "Figure 5 ("+p.name+"): attribute inference AUC", attr)
				} else {
					experiments.PrintQuality(os.Stdout, "Figure 6 ("+p.name+"): link prediction AUC", link)
				}
			}
		case "fig7", "fig8":
			iters := []int{1, 2, 5, 10, 20}
			if *quick {
				iters = []int{1, 5}
			}
			sets := []string{"facebook", "pubmed", "flickr"}
			if *quick {
				sets = []string{"cora"}
			}
			link, attr, err := experiments.RunFig78(sets, iters, opt)
			check(err)
			if id == "fig7" {
				experiments.PrintInitPoints(os.Stdout, "Figure 7: GreedyInit vs random (link prediction)", link)
			} else {
				experiments.PrintInitPoints(os.Stdout, "Figure 8: GreedyInit vs random (attribute inference)", attr)
			}
		case "topk":
			// Explicit flags win; otherwise -quick shrinks the graph.
			// The index comparison uses the paper experiments' default
			// K=128 (candidate rows of k/2 = 64 float64s): at that width
			// the exact scan's working set far exceeds cache, which is
			// the memory-bandwidth regime the quantized tier exists for —
			// and the regime production embedding serving actually runs
			// in. (At K=32 the whole matrix is cache-resident and a
			// 1-byte code scan has nothing to win; see the README table.)
			n, topkK := *topkN, 128
			nSet := false
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "k":
					topkK = *k // not opt.K, which -quick rewrites
				case "topk-n":
					nSet = true
				}
			})
			if *quick && !nSet {
				n = 20000
			}
			// 2000 queries keep each timed path's window tens of
			// milliseconds at minimum, so the perf gate's speedup ratio
			// is not at the mercy of a single GC pause or scheduler
			// hiccup on a shared CI runner.
			b, err := experiments.RunTopK(experiments.TopKOptions{
				N: n, K: topkK, Threads: opt.Threads, Seed: opt.Seed,
				Queries: 2000, Rerank: *rerank,
			})
			check(err)
			experiments.PrintTopK(os.Stdout, b)
			jsonPath := *topkJSON
			if jsonPath == "" {
				jsonPath = "BENCH_topk.json"
			}
			check(experiments.WriteTopKJSON(jsonPath, b))
			fmt.Printf("wrote %s\n", jsonPath)
			if *baseline != "" {
				base, err := experiments.ReadTopKJSON(*baseline)
				check(err)
				check(experiments.CheckTopKBaseline(b, base, *tolerance))
				fmt.Printf("perf gate: within %.0f%% of %s (ivf %.1fx vs baseline %.1fx, recall %.3f vs %.3f)\n",
					*tolerance*100, *baseline, b.SpeedupIVFVsScan, base.SpeedupIVFVsScan, b.RecallAtK, base.RecallAtK)
			}
		case "update":
			// The delta sweep: -quick shrinks the graph and deltas so CI
			// can gate the incremental speedup on every push. K follows
			// the topk reasoning (K=128 puts the exact rebuild in the
			// memory-bound regime the pipeline exists for); -quick drops
			// to 32 to keep the smoke run short.
			n, updK := *updateN, 128
			nSet, kSet := false, false
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "k":
					updK = *k
					kSet = true
				case "update-n":
					nSet = true
				}
			})
			deltas := []int{100, 1000, 10000}
			repeats := 2
			if *quick {
				if !nSet {
					n = 10000
				}
				if !kSet {
					updK = 32
				}
				deltas = []int{20, 100, 500}
				// Quick updates are cheap but their incremental index
				// refreshes are ~1ms, so the gated speedup ratio needs a
				// min-of-N denominator to shrug off one scheduler blip on
				// a shared CI runner.
				repeats = 3
			}
			b, err := experiments.RunUpdate(experiments.UpdateOptions{
				N: n, K: updK, Threads: opt.Threads, Seed: opt.Seed,
				Shards: *shards, Deltas: deltas, Repeats: repeats,
			})
			check(err)
			experiments.PrintUpdate(os.Stdout, b)
			jsonPath := *topkJSON
			if jsonPath == "" {
				jsonPath = "BENCH_update.json"
			}
			check(experiments.WriteUpdateJSON(jsonPath, b))
			fmt.Printf("wrote %s\n", jsonPath)
			if *baseline != "" {
				base, err := experiments.ReadUpdateJSON(*baseline)
				check(err)
				check(experiments.CheckUpdateBaseline(b, base, *tolerance))
				fmt.Printf("update gate: within %.0f%% of %s\n", *tolerance*100, *baseline)
			}
		case "kernel":
			// Pure-CPU microbenchmark: no graph, no training. -quick
			// shrinks the per-cell timed window; the dims stay the same so
			// quick and full reports gate against each other.
			minTime := 50 * time.Millisecond
			if *quick {
				minTime = 10 * time.Millisecond
			}
			b, err := experiments.RunKernel(experiments.KernelOptions{
				Seed: opt.Seed, MinTime: minTime,
			})
			check(err)
			experiments.PrintKernel(os.Stdout, b)
			jsonPath := *topkJSON
			if jsonPath == "" {
				jsonPath = "BENCH_kernel.json"
			}
			check(experiments.WriteKernelJSON(jsonPath, b))
			fmt.Printf("wrote %s\n", jsonPath)
			if *baseline != "" {
				base, err := experiments.ReadKernelJSON(*baseline)
				check(err)
				check(experiments.CheckKernelBaseline(b, base, *tolerance))
				fmt.Printf("kernel gate: within %.0f%% of %s (dispatch: %v)\n", *tolerance*100, *baseline, b.ISAs)
			}
		case "replicate":
			// Append throughput is I/O-bound and catch-up replay is
			// dominated by O(Δ) model updates, so the graph can stay
			// moderate; -quick shrinks everything so the perf gate runs
			// on every push. Explicit flags win over -quick.
			n, backlog, replK, appendRecs := *replN, *replBack, 64, 2000
			nSet, backSet, kSet := false, false, false
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "k":
					replK = *k
					kSet = true
				case "repl-n":
					nSet = true
				case "repl-backlog":
					backSet = true
				}
			})
			if *quick {
				if !nSet {
					n = 4000
				}
				if !backSet {
					backlog = 1500
				}
				if !kSet {
					replK = 32
				}
				appendRecs = 500
			}
			b, err := experiments.RunReplicate(experiments.ReplicateOptions{
				N: n, K: replK, Threads: opt.Threads, Seed: opt.Seed,
				Backlog: backlog, AppendRecords: appendRecs,
			})
			check(err)
			experiments.PrintReplicate(os.Stdout, b)
			jsonPath := *topkJSON
			if jsonPath == "" {
				jsonPath = "BENCH_replicate.json"
			}
			check(experiments.WriteReplicateJSON(jsonPath, b))
			fmt.Printf("wrote %s\n", jsonPath)
			if *baseline != "" {
				base, err := experiments.ReadReplicateJSON(*baseline)
				check(err)
				check(experiments.CheckReplicateBaseline(b, base, *tolerance))
				fmt.Printf("replicate gate: within %.0f%% of %s (sync-free %.1fx vs %.1fx, crossover %.0f vs %.0f)\n",
					*tolerance*100, *baseline, b.SyncFreeSpeedup, base.SyncFreeSpeedup,
					b.CrossoverRecords, base.CrossoverRecords)
			}
		default:
			log.Fatalf("unknown experiment %q", id)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"table2", "table3", "table4", "table5", "fig2", "fig3", "fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7", "fig8"} {
			fmt.Printf("\n===== %s =====\n", id)
			run(id)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
