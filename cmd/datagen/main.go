// Command datagen materializes the synthetic stand-in datasets (or custom
// configurations) as edge/attribute/label text files, so the same inputs
// can be fed to cmd/pane, external tools, or other implementations.
//
//	datagen -dataset cora -out data/cora          # a registered stand-in
//	datagen -n 10000 -deg 8 -d 200 -attrs 5 -communities 10 -out data/custom
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"

	"pane/internal/datagen"
	"pane/internal/dataset"
	"pane/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		name        = flag.String("dataset", "", "registered dataset name (overrides the custom flags)")
		outPrefix   = flag.String("out", "", "output path prefix (required)")
		n           = flag.Int("n", 1000, "nodes")
		deg         = flag.Float64("deg", 5, "mean out-degree")
		d           = flag.Int("d", 100, "attributes")
		attrsPer    = flag.Float64("attrs", 4, "mean attributes per node")
		communities = flag.Int("communities", 5, "communities / label kinds")
		multiLabel  = flag.Bool("multilabel", false, "allow multiple labels per node")
		undirected  = flag.Bool("undirected", false, "symmetrize edges")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *outPrefix == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	var err error
	if *name != "" {
		g, _, err = dataset.Load(*name)
	} else {
		g, err = datagen.Generate(datagen.Config{
			Name: "custom", N: *n, AvgOutDeg: *deg, D: *d, AttrsPer: *attrsPer,
			Communities: *communities, MultiLabel: *multiLabel,
			Undirected: *undirected, Seed: *seed,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	log.Printf("generated: n=%d m=%d d=%d |ER|=%d labels=%d",
		st.Nodes, st.Edges, st.Attrs, st.AttrEntries, st.LabelKinds)

	if dir := filepath.Dir(*outPrefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	writes := []struct {
		suffix string
		fn     func(f *os.File) error
	}{
		{".edges", func(f *os.File) error { return g.WriteEdges(f) }},
		{".attrs", func(f *os.File) error { return g.WriteAttrs(f) }},
		{".labels", func(f *os.File) error { return g.WriteLabels(f) }},
	}
	for _, w := range writes {
		path := *outPrefix + w.suffix
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
}
