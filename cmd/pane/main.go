// Command pane computes PANE embeddings for an attributed graph given as
// edge / attribute / (optional) label files and writes the result as a
// single model bundle — config + embeddings + graph in one file that
// paneserve can load, update dynamically, and snapshot (see
// internal/store).
//
// Usage:
//
//	pane -edges g.edges -attrs g.attrs [-labels g.labels] \
//	     [-k 128] [-alpha 0.5] [-eps 0.015] [-threads 10] [-seed 1] \
//	     [-out model.pane] [-text embeddings]
//
// -text additionally dumps the matrices as whitespace-separated text for
// ad-hoc inspection: <prefix>.xf, <prefix>.xb (one node per line, k/2
// values each) and <prefix>.y (one attribute per line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pane/internal/core"
	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pane: ")
	var (
		edgePath   = flag.String("edges", "", "edge list file: 'src dst' per line (required)")
		attrPath   = flag.String("attrs", "", "attribute file: 'node attr [weight]' per line (required)")
		labelPath  = flag.String("labels", "", "label file: 'node label' per line (optional)")
		outPath    = flag.String("out", "model.pane", "output model bundle path")
		textPrefix = flag.String("text", "", "also write text matrices under this prefix (optional)")
		k          = flag.Int("k", 128, "space budget (even)")
		alpha      = flag.Float64("alpha", 0.5, "random walk stopping probability")
		eps        = flag.Float64("eps", 0.015, "error threshold")
		threads    = flag.Int("threads", 10, "worker threads (1 = single-thread algorithm)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *edgePath == "" || *attrPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := graph.LoadFiles(*edgePath, *attrPath, *labelPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	st := g.Stats()
	log.Printf("loaded graph: n=%d m=%d d=%d |ER|=%d", st.Nodes, st.Edges, st.Attrs, st.AttrEntries)

	cfg := core.Config{K: *k, Alpha: *alpha, Eps: *eps, Threads: *threads, Seed: *seed}
	start := time.Now()
	var emb *core.Embedding
	if *threads > 1 {
		emb, err = core.ParallelPANE(g, cfg)
	} else {
		emb, err = core.PANE(g, cfg)
	}
	if err != nil {
		log.Fatalf("embedding: %v", err)
	}
	log.Printf("embedded in %.2fs (t=%d iterations)", time.Since(start).Seconds(), cfg.Iterations())

	bundle := &store.Bundle{
		ModelVersion: 1,
		Cfg:          cfg,
		Xf:           emb.Xf,
		Xb:           emb.Xb,
		Y:            emb.Y,
		Adj:          g.Adj,
		Attr:         g.Attr,
		Labels:       g.Labels,
	}
	if err := store.SaveBundleFile(*outPath, bundle); err != nil {
		log.Fatalf("writing bundle: %v", err)
	}
	log.Printf("wrote %s (version 1)", *outPath)

	if *textPrefix != "" {
		for _, out := range []struct {
			suffix string
			m      *mat.Dense
		}{
			{".xf", emb.Xf}, {".xb", emb.Xb}, {".y", emb.Y},
		} {
			if err := writeMatrix(*textPrefix+out.suffix, out.m); err != nil {
				log.Fatalf("writing %s: %v", *textPrefix+out.suffix, err)
			}
		}
		log.Printf("wrote %s.xf, %s.xb, %s.y", *textPrefix, *textPrefix, *textPrefix)
	}
}

func writeMatrix(path string, m *mat.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if j > 0 {
				if err := w.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%g", v); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}
