// Command paneserve trains (or restores) a PANE model and serves it over
// HTTP behind the lifecycle engine — see internal/server for the endpoint
// list. The served model is live: POST /update/* applies dynamic graph
// updates, and the model can be snapshotted to a single bundle file on
// demand, on a timer, and on shutdown.
//
// Train from graph files, snapshotting every 5 minutes:
//
//	paneserve -edges g.edges -attrs g.attrs -k 128 \
//	          -snapshot model.pane -snapshot-every 5m -addr :8080
//
// Or restore a previously saved bundle (from cmd/pane or a snapshot):
//
//	paneserve -load model.pane -addr :8080
//
// Replication (see the README's Replication section): a leader adds a
// durable write-ahead delta log so every applied update survives a
// crash and can be tailed by followers —
//
//	paneserve -load model.pane -wal wal/ -wal-sync always \
//	          -snapshot model.pane -snapshot-every 5m -addr :8080
//
// while a follower bootstraps from the leader's /bundle, tails its
// /replicate stream, and serves the read endpoints only (writes answer
// 403):
//
//	paneserve -follow http://leader:8080 -addr :8081
//
// On restart a leader replays the log records past its restored bundle,
// so no acknowledged update is lost; a snapshot compacts log segments
// the bundle's version makes redundant. Followers report
// replication_lag_records / applied_version under /healthz and
// /metrics, and fall back to a full bundle fetch when their lag exceeds
// -follow-lag (or their log position was compacted away).
//
// Failover (see the README's "Failover runbook"): a follower started
// with -promote-wal can be promoted in place when the leader dies —
//
//	paneserve -follow http://leader:8080 -promote-wal wal/ -addr :8081
//	curl -X POST http://follower:8081/promote
//
// Promotion stops the tail, opens the promotion WAL, raises the fencing
// epoch, and lifts read-only mode; the deposed leader's appends fail
// with a fencing error the moment it hears the new epoch. While a
// follower cannot reach its leader it keeps serving reads, advertising
// X-Pane-Staleness: stale and failing GET /readyz so load balancers can
// drain it without killing it.
//
// Observability: the main listener always serves GET /metrics (Prometheus
// text). -metrics-addr starts a second, admin-only listener carrying
// /metrics, /debug/pprof/* and /debug/vars (expvar, with the full metric
// snapshot published under "pane") — keep it off the public network.
// -slow-query-ms logs any request slower than the threshold and counts it
// in pane_http_slow_requests_total.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"pane/internal/core"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/replica"
	"pane/internal/server"
	"pane/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paneserve: ")
	var (
		edgePath  = flag.String("edges", "", "edge list file (training mode)")
		attrPath  = flag.String("attrs", "", "attribute file (training mode)")
		loadPath  = flag.String("load", "", "model bundle to restore instead of training")
		snapPath  = flag.String("snapshot", "", "bundle path for POST /snapshot, periodic and shutdown snapshots")
		snapEvery = flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 disables; requires -snapshot)")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 128, "space budget")
		alpha     = flag.Float64("alpha", 0.5, "stopping probability")
		eps       = flag.Float64("eps", 0.015, "error threshold")
		threads   = flag.Int("threads", 10, "worker threads")
		seed      = flag.Int64("seed", 1, "random seed")
		sweeps    = flag.Int("sweeps", engine.DefaultUpdateSweeps, "CCD sweeps per dynamic update")
		indexMode = flag.String("index", "auto", "serving index: off, exact, ivf (exact+IVF), or auto (bundle setting when present, ivf+sq8 otherwise)")
		nlist     = flag.Int("nlist", 0, "IVF coarse clusters per shard (0 = sqrt(shard rows))")
		nprobe    = flag.Int("nprobe", 0, "default IVF lists probed per query (0 = nlist/8)")
		shards    = flag.Int("shards", 1, "serving-index shards: contiguous candidate row partitions rebuilt and searched concurrently")
		quantize  = flag.Bool("quantize", true, "build the SQ8/IVFSQ quantized tiers (mode=sq8, mode=ivfsq on the top-k routes)")
		rerank    = flag.Int("rerank", 0, "quantized survivor multiplier: re-rank rerank*k candidates exactly (0 = default)")
		fp16      = flag.Bool("fp16", true, "build the binary16 tiers (mode=fp16, mode=ivffp16 on the top-k routes)")
		refresh   = flag.Float64("refresh-threshold", engine.DefaultRefreshThreshold,
			"dirty-row fraction at or below which updates refresh the serving index incrementally instead of rebuilding (0 = always rebuild)")
		affinity = flag.Float64("affinity-threshold", engine.DefaultAffinityThreshold,
			"frontier fraction at or below which updates patch the retained affinity recurrence instead of recomputing it (0 = always recompute)")
		fullAff     = flag.Bool("full-affinity", false, "escape hatch: recompute the affinity recurrence from scratch on every update (same as -affinity-threshold 0)")
		debug       = flag.Bool("debug", false, "log per-update delta sizes and update-path choices")
		metricsAddr = flag.String("metrics-addr", "",
			"admin listener address for /metrics + /debug/pprof + /debug/vars (empty = disabled; /metrics is always on the main listener)")
		slowQueryMS = flag.Int("slow-query-ms", 0,
			"log requests slower than this many milliseconds (0 disables the slow-query log)")
		walDir = flag.String("wal", "",
			"write-ahead log directory (leader mode): every applied update is logged before it publishes, and restart replays the log past the restored bundle")
		walSync = flag.String("wal-sync", "always",
			"WAL fsync policy: always (durable per update), interval (flush every -wal-sync-interval), or none (OS-paced)")
		walSyncInterval = flag.Duration("wal-sync-interval", 100*time.Millisecond,
			"flush cadence under -wal-sync interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 64<<20,
			"WAL segment rotation size; snapshots compact whole segments at or below the snapshotted version")
		followURL = flag.String("follow", "",
			"follower mode: bootstrap from this leader's /bundle, tail its /replicate stream, and serve read-only")
		followPoll = flag.Duration("follow-poll", 500*time.Millisecond,
			"poll interval while caught up with the leader")
		followLag = flag.Uint64("follow-lag", 10000,
			"record lag past which the follower fetches a bundle instead of replaying deltas")
		followRetries = flag.Int("follow-bootstrap-retries", 5,
			"extra bootstrap attempts (capped exponential backoff) before a follower gives up on an unreachable leader")
		promoteWAL = flag.String("promote-wal", "",
			"write-ahead log directory this follower opens when promoted to leader via POST /promote (empty keeps the route disabled)")
	)
	flag.Parse()
	if *snapEvery > 0 && *snapPath == "" {
		log.Fatal("-snapshot-every requires -snapshot")
	}
	if *followURL != "" {
		if *walDir != "" {
			log.Fatal("-follow and -wal are mutually exclusive: followers do not write a log")
		}
		if *loadPath != "" || *edgePath != "" || *attrPath != "" {
			log.Fatal("-follow bootstraps from the leader; drop -load/-edges/-attrs")
		}
	} else if *promoteWAL != "" {
		log.Fatal("-promote-wal is follower-only: a process that is already a leader has -wal")
	}

	// An explicitly passed -shards must win even when "auto" restores a
	// bundle-recorded index configuration.
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	// indexOpts maps -index to engine options. "auto" defers to a loaded
	// bundle's recorded configuration and falls back to full indexing
	// when there is none (or when training fresh); an explicit -shards
	// overrides the shard count either way.
	indexOpts := func(loading bool) []engine.Option {
		ivfCfg := engine.IndexConfig{
			IVF: true, NList: *nlist, NProbe: *nprobe, Shards: *shards,
			Quantize: *quantize, Rerank: *rerank, FP16: *fp16,
		}
		var opts []engine.Option
		switch *indexMode {
		case "off":
			if loading {
				return []engine.Option{engine.WithoutIndex()}
			}
			return nil
		case "exact":
			opts = []engine.Option{engine.WithIndex(engine.IndexConfig{
				Shards: *shards, Quantize: *quantize, Rerank: *rerank, FP16: *fp16,
			})}
		case "ivf":
			opts = []engine.Option{engine.WithIndex(ivfCfg)}
		case "auto":
			opts = []engine.Option{engine.WithFallbackIndex(ivfCfg)}
			// Only "auto" can restore a bundle-recorded layout that
			// disagrees with the flag; the explicit modes above already
			// carry *shards in their configs.
			if shardsSet {
				opts = append(opts, engine.WithShards(*shards))
			}
		default:
			log.Fatalf("unknown -index mode %q (want off, exact, ivf, or auto)", *indexMode)
		}
		return opts
	}

	// Options shared by both construction paths: sweep count, the
	// incremental-refresh threshold, and (with -debug) an observer that
	// logs each update's delta size and which path served it.
	affThreshold := *affinity
	if *fullAff {
		affThreshold = 0
	}
	commonOpts := []engine.Option{
		engine.WithUpdateSweeps(*sweeps),
		engine.WithRefreshThreshold(*refresh),
		engine.WithAffinityThreshold(affThreshold),
	}
	if *debug {
		commonOpts = append(commonOpts, engine.WithUpdateObserver(func(s engine.UpdateStats) {
			path := "full"
			if s.Incremental {
				path = "incremental"
			}
			aff := "full"
			if s.AffinityIncremental {
				aff = "incremental"
			}
			gram := ""
			if s.GramCorrection {
				gram = ", gram-corrected links"
			}
			log.Printf("debug: update v%d: delta %d node rows + %d attr rows (%s path; %s affinity, frontier %d%s)",
				s.Version, s.DirtyNodes, s.DirtyAttrs, path, aff, s.AffinityFrontier, gram)
		}))
	}

	var (
		eng *engine.Engine
		rep *replica.Replica
		err error
	)
	switch {
	case *followURL != "":
		opts := append(append([]engine.Option{}, commonOpts...), indexOpts(true)...)
		rep, err = replica.Bootstrap(context.Background(), replica.Options{
			Leader: *followURL, Poll: *followPoll, LagFallback: *followLag,
			BootstrapRetries: *followRetries,
		}, opts...)
		if err != nil {
			log.Fatalf("bootstrapping from leader: %v", err)
		}
		eng = rep.Engine()
		m := eng.Model()
		log.Printf("following %s: version %d, %d nodes, %d attrs, k=%d",
			*followURL, m.Version, m.Nodes(), m.Attrs(), m.Emb.K())
	case *loadPath != "":
		opts := append(append([]engine.Option{}, commonOpts...), indexOpts(true)...)
		eng, err = engine.Open(*loadPath, opts...)
		if err != nil {
			log.Fatalf("restoring bundle: %v", err)
		}
		m := eng.Model()
		log.Printf("restored %s: version %d, %d nodes, %d attrs, k=%d",
			*loadPath, m.Version, m.Nodes(), m.Attrs(), m.Emb.K())
	case *edgePath != "" && *attrPath != "":
		g, err := graph.LoadFiles(*edgePath, *attrPath, "")
		if err != nil {
			log.Fatalf("loading graph: %v", err)
		}
		cfg := core.Config{K: *k, Alpha: *alpha, Eps: *eps, Threads: *threads, Seed: *seed}
		start := time.Now()
		opts := append(append([]engine.Option{}, commonOpts...), indexOpts(false)...)
		eng, err = engine.Train(g, cfg, opts...)
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		log.Printf("trained in %.1fs", time.Since(start).Seconds())
		if *snapPath != "" {
			if _, err := eng.Snapshot(*snapPath); err != nil {
				log.Fatalf("initial snapshot: %v", err)
			}
			log.Printf("saved %s", *snapPath)
		}
	default:
		flag.Usage()
		log.Fatal("either -load or both -edges and -attrs are required")
	}

	// Leader durability: attach the write-ahead log. Records past the
	// restored bundle replay first, so an acknowledged update stream
	// picks up exactly where the crashed process durably got to.
	var walLog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		walLog, err = wal.Open(*walDir, wal.Options{
			Sync: policy, SyncEvery: *walSyncInterval, SegmentBytes: *walSegBytes,
		})
		if err != nil {
			log.Fatalf("opening WAL: %v", err)
		}
		before := eng.Version()
		if err := eng.AttachWAL(walLog); err != nil {
			log.Fatalf("attaching WAL: %v", err)
		}
		if after := eng.Version(); after != before {
			log.Printf("replayed WAL %s: version %d -> %d (%d records)", *walDir, before, after, after-before)
		} else {
			log.Printf("WAL %s attached at version %d (sync=%s)", *walDir, after, policy)
		}
	}

	if st := eng.IndexStatus(); st.Enabled {
		log.Printf("serving index: version %d, %d shard(s), ivf=%v nlist=%d nprobe=%d quantize=%v rerank=%d fp16=%v refresh-threshold=%.2f",
			st.Version, st.Shards, st.IVF, st.NList, st.NProbe, st.Quantize, st.Rerank, st.FP16, st.RefreshThreshold)
	} else {
		log.Print("serving index: disabled (top-k queries scan)")
	}
	log.Printf("kernel dispatch: %v", engine.KernelDispatch())

	var opts []server.Option
	if *snapPath != "" {
		opts = append(opts, server.WithSnapshotPath(*snapPath))
	}
	if *slowQueryMS > 0 {
		opts = append(opts, server.WithSlowQueryLog(time.Duration(*slowQueryMS)*time.Millisecond, nil))
	}
	// promotedLog holds the WAL a promoted follower opened; written once
	// from the /promote handler's goroutine, read at shutdown.
	var promotedLog atomic.Pointer[wal.Log]
	if rep != nil {
		opts = append(opts,
			server.WithReadOnly(),
			server.WithHealthSection("replication", func() interface{} { return rep.Status() }),
			server.WithStaleness(rep.Stale),
			server.WithReadiness("replication", func() error {
				if rep.Stale() {
					return errors.New("replication stale: leader unreachable")
				}
				return nil
			}))
		if *promoteWAL != "" {
			opts = append(opts, server.WithPromotion(func() (uint32, error) {
				policy, err := wal.ParseSyncPolicy(*walSync)
				if err != nil {
					return 0, err
				}
				plog, err := wal.Open(*promoteWAL, wal.Options{
					Sync: policy, SyncEvery: *walSyncInterval, SegmentBytes: *walSegBytes,
				})
				if err != nil {
					return 0, err
				}
				epoch, err := rep.Promote(plog)
				if err != nil {
					plog.Close()
					return 0, err
				}
				promotedLog.Store(plog)
				log.Printf("promoted to leader: epoch %d, version %d, wal %s (sync=%s)",
					epoch, eng.Version(), *promoteWAL, policy)
				return epoch, nil
			}))
		}
	}
	if walLog != nil {
		opts = append(opts, server.WithHealthSection("wal", func() interface{} {
			first, last, ok := walLog.Bounds()
			return map[string]interface{}{
				"first_record": first, "last_record": last, "records": ok, "sync": *walSync,
			}
		}))
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(eng, opts...),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	// The admin listener carries the profiling and introspection surface a
	// public listener must not: pprof handlers (CPU/heap/goroutine
	// profiles can stall or leak internals), expvar, and the same
	// /metrics exposition. No read/write timeouts — CPU profiles stream
	// for their whole -seconds duration.
	var adminSrv *http.Server
	if *metricsAddr != "" {
		expvar.Publish("pane", expvar.Func(func() any { return eng.Metrics().Snapshot() }))
		admin := http.NewServeMux()
		admin.Handle("GET /metrics", eng.Metrics().Handler())
		admin.Handle("GET /debug/vars", expvar.Handler())
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminSrv = &http.Server{Addr: *metricsAddr, Handler: admin}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if rep != nil {
		go rep.Run(ctx)
	}

	if *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if m, err := eng.Snapshot(*snapPath); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("snapshot: version %d -> %s", m.Version, *snapPath)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	if adminSrv != nil {
		go func() {
			log.Printf("admin (metrics/pprof/expvar) on %s", *metricsAddr)
			if err := adminSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if adminSrv != nil {
			if err := adminSrv.Shutdown(shutdownCtx); err != nil {
				log.Printf("admin shutdown: %v", err)
			}
		}
		if *snapPath != "" {
			if m, err := eng.Snapshot(*snapPath); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				log.Printf("final snapshot: version %d -> %s", m.Version, *snapPath)
			}
		}
		// Close the log after the final snapshot: the snapshot's
		// compaction reclaims everything the bundle now anchors.
		if walLog != nil {
			if err := walLog.Close(); err != nil {
				log.Printf("closing WAL: %v", err)
			}
		}
		if plog := promotedLog.Load(); plog != nil {
			if err := plog.Close(); err != nil {
				log.Printf("closing promotion WAL: %v", err)
			}
		}
	}
}
