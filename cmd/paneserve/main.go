// Command paneserve trains (or loads) a PANE embedding and serves it over
// HTTP — see internal/server for the endpoint list.
//
// Train from graph files and serve:
//
//	paneserve -edges g.edges -attrs g.attrs -k 128 -addr :8080
//
// Or load previously saved binary embeddings (see internal/store):
//
//	paneserve -load embeddings -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"pane/internal/core"
	"pane/internal/graph"
	"pane/internal/server"
	"pane/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paneserve: ")
	var (
		edgePath = flag.String("edges", "", "edge list file (training mode)")
		attrPath = flag.String("attrs", "", "attribute file (training mode)")
		loadPfx  = flag.String("load", "", "binary embedding prefix to load instead of training")
		savePfx  = flag.String("save", "", "binary embedding prefix to save after training")
		addr     = flag.String("addr", ":8080", "listen address")
		k        = flag.Int("k", 128, "space budget")
		alpha    = flag.Float64("alpha", 0.5, "stopping probability")
		eps      = flag.Float64("eps", 0.015, "error threshold")
		threads  = flag.Int("threads", 10, "worker threads")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var emb *core.Embedding
	switch {
	case *loadPfx != "":
		xf, err := store.LoadDenseFile(*loadPfx + ".xf.bin")
		if err != nil {
			log.Fatalf("loading: %v", err)
		}
		xb, err := store.LoadDenseFile(*loadPfx + ".xb.bin")
		if err != nil {
			log.Fatalf("loading: %v", err)
		}
		y, err := store.LoadDenseFile(*loadPfx + ".y.bin")
		if err != nil {
			log.Fatalf("loading: %v", err)
		}
		emb = &core.Embedding{Xf: xf, Xb: xb, Y: y}
		log.Printf("loaded embeddings: %d nodes, %d attrs, k=%d", xf.Rows, y.Rows, emb.K())
	case *edgePath != "" && *attrPath != "":
		g, err := graph.LoadFiles(*edgePath, *attrPath, "")
		if err != nil {
			log.Fatalf("loading graph: %v", err)
		}
		cfg := core.Config{K: *k, Alpha: *alpha, Eps: *eps, Threads: *threads, Seed: *seed}
		start := time.Now()
		emb, err = core.ParallelPANE(g, cfg)
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		log.Printf("trained in %.1fs", time.Since(start).Seconds())
		if *savePfx != "" {
			if err := store.SaveDenseFile(*savePfx+".xf.bin", emb.Xf); err != nil {
				log.Fatalf("saving: %v", err)
			}
			if err := store.SaveDenseFile(*savePfx+".xb.bin", emb.Xb); err != nil {
				log.Fatalf("saving: %v", err)
			}
			if err := store.SaveDenseFile(*savePfx+".y.bin", emb.Y); err != nil {
				log.Fatalf("saving: %v", err)
			}
			log.Printf("saved %s.{xf,xb,y}.bin", *savePfx)
		}
	default:
		flag.Usage()
		log.Fatal("either -load or both -edges and -attrs are required")
	}

	log.Printf("serving on %s", *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(emb),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
