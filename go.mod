module pane

go 1.24
