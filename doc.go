// Package pane is a from-scratch Go reproduction of PANE — "Scaling
// Attributed Network Embedding to Massive Graphs" (Yang et al., PVLDB
// 14(1), 2020). The implementation lives under internal/: see
// internal/core for the algorithm, internal/graph for the data model,
// internal/engine for the versioned model lifecycle (live updates,
// sharded per-version serving indexes, snapshot/restore) behind the HTTP
// service in internal/server, internal/index for the top-k backends
// (exact parallel scan, approximate IVF, and the shard fan-out/merge
// layer) those queries run on, and cmd/benchexp for the experiment
// harness that regenerates every table and figure of the paper's
// evaluation. README.md has the tour.
package pane
