// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section (§5), plus ablation benches for the design
// choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem .
//
// The benchmarks use the small stand-in datasets so a full pass stays in
// minutes; cmd/benchexp runs the full-size experiment suite.
package pane_test

import (
	"math/rand"
	"testing"

	"pane/internal/baselines"
	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
	"pane/internal/experiments"
	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/sparse"
	"pane/internal/svd"
)

func benchOpts() experiments.Options {
	return experiments.Options{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
}

func loadBench(b *testing.B, name string) *graph.Graph {
	b.Helper()
	g, _, err := dataset.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// ---------------------------------------------------------------------------
// Tables.

// BenchmarkTable2RunningExample regenerates the running-example affinity
// table (Table 2).
func BenchmarkTable2RunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2()
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable3DatasetGeneration regenerates the dataset statistics
// table (Table 3) for the small stand-ins.
func BenchmarkTable3DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(dataset.SmallOrder); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4AttrInference regenerates one Table 4 row (attribute
// inference, cora stand-in, all methods) and reports PANE's AUC.
func BenchmarkTable4AttrInference(b *testing.B) {
	var lastAUC float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4([]string{"cora"}, benchOpts(), 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range rows[0].Scores {
			if s.Method == "PANE(single)" {
				lastAUC = s.AUC
			}
		}
	}
	b.ReportMetric(lastAUC, "PANE-AUC")
}

// BenchmarkTable5LinkPrediction regenerates one Table 5 row (link
// prediction, cora stand-in, all methods) and reports PANE's AUC.
func BenchmarkTable5LinkPrediction(b *testing.B) {
	var lastAUC float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5([]string{"cora"}, benchOpts(), 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range rows[0].Scores {
			if s.Method == "PANE(single)" {
				lastAUC = s.AUC
			}
		}
	}
	b.ReportMetric(lastAUC, "PANE-AUC")
}

// ---------------------------------------------------------------------------
// Figures.

// BenchmarkFig2NodeClassification regenerates one Figure 2 point set
// (cora, training fraction 0.5) and reports PANE's Micro-F1.
func BenchmarkFig2NodeClassification(b *testing.B) {
	var micro float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig2([]string{"cora"}, []float64{0.5}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range rows[0].Points {
			if p.Method == "PANE(single)" {
				micro = p.MicroF1
			}
		}
	}
	b.ReportMetric(micro, "PANE-MicroF1")
}

// BenchmarkFig3RunningTime times PANE end-to-end on the citeseer stand-in
// — the per-method running-time comparison of Figure 3 (the other
// methods' times appear in their own benchmarks below).
func BenchmarkFig3RunningTime(b *testing.B) {
	g := loadBench(b, "citeseer")
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParallelPANE(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Baselines times each implemented competitor on the same
// graph, the rest of Figure 3's bars.
func BenchmarkFig3Baselines(b *testing.B) {
	g := loadBench(b, "citeseer")
	b.Run("NRP", func(b *testing.B) {
		cfg := baselines.DefaultNRPConfig()
		cfg.K = 64
		for i := 0; i < b.N; i++ {
			baselines.NRP(g, cfg)
		}
	})
	b.Run("CANLite", func(b *testing.B) {
		cfg := baselines.DefaultCANLiteConfig()
		cfg.K = 64
		for i := 0; i < b.N; i++ {
			baselines.CANLite(g, cfg)
		}
	})
	b.Run("BANE", func(b *testing.B) {
		cfg := baselines.DefaultBANEConfig()
		cfg.K = 64
		for i := 0; i < b.N; i++ {
			baselines.BANE(g, cfg)
		}
	})
	b.Run("LQANR", func(b *testing.B) {
		cfg := baselines.DefaultLQANRConfig()
		cfg.K = 64
		for i := 0; i < b.N; i++ {
			baselines.LQANR(g, cfg)
		}
	})
	b.Run("TADW", func(b *testing.B) {
		cfg := baselines.DefaultTADWConfig()
		cfg.K = 64
		cfg.Iters = 5
		for i := 0; i < b.N; i++ {
			baselines.TADW(g, cfg)
		}
	})
}

// BenchmarkFig4aSpeedup measures parallel PANE at several thread counts
// (Figure 4a) on the tweibo stand-in, the larger of the sweep datasets.
func BenchmarkFig4aSpeedup(b *testing.B) {
	g := loadBench(b, "tweibo")
	for _, nb := range []int{1, 8} {
		b.Run(benchName("nb", nb), func(b *testing.B) {
			cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: nb, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := core.ParallelPANE(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4bVaryK measures time vs space budget k (Figure 4b).
func BenchmarkFig4bVaryK(b *testing.B) {
	g := loadBench(b, "tweibo")
	for _, k := range []int{16, 128} {
		b.Run(benchName("k", k), func(b *testing.B) {
			cfg := core.Config{K: k, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := core.ParallelPANE(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4cVaryEps measures time vs error threshold ε (Figure 4c):
// smaller ε → more iterations → slower, linear in log(1/ε).
func BenchmarkFig4cVaryEps(b *testing.B) {
	g := loadBench(b, "tweibo")
	for _, eps := range []float64{0.25, 0.001} {
		b.Run(benchNameF("eps", eps), func(b *testing.B) {
			cfg := core.Config{K: 64, Alpha: 0.5, Eps: eps, Threads: 4, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := core.ParallelPANE(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5AttrQualityVaryK regenerates the Figure 5a series
// (attribute-inference AUC vs k, cora stand-in), reporting AUC at each k.
func BenchmarkFig5AttrQualityVaryK(b *testing.B) {
	for _, k := range []int{16, 128} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				attr, _, err := experiments.RunFig56([]string{"cora"}, "k", []float64{float64(k)}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				auc = attr[0].AUC
			}
			b.ReportMetric(auc, "AUC")
		})
	}
}

// BenchmarkFig6LinkQualityVaryAlpha regenerates the Figure 6d series
// (link-prediction AUC vs α, cora stand-in).
func BenchmarkFig6LinkQualityVaryAlpha(b *testing.B) {
	for _, alpha := range []float64{0.1, 0.9} {
		b.Run(benchNameF("alpha", alpha), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				_, link, err := experiments.RunFig56([]string{"cora"}, "alpha", []float64{alpha}, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				auc = link[0].AUC
			}
			b.ReportMetric(auc, "AUC")
		})
	}
}

// BenchmarkFig7GreedyInit regenerates one Figure 7 point pair: PANE vs
// PANE-R at one CCD sweep, link prediction, reporting both AUCs.
func BenchmarkFig7GreedyInit(b *testing.B) {
	var greedy, random float64
	for i := 0; i < b.N; i++ {
		link, _, err := experiments.RunFig78([]string{"cora"}, []int{1}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range link {
			if p.Variant == "PANE" {
				greedy = p.AUC
			} else {
				random = p.AUC
			}
		}
	}
	b.ReportMetric(greedy, "greedy-AUC")
	b.ReportMetric(random, "random-AUC")
}

// BenchmarkFig8GreedyInitAttr is Figure 8's attribute-inference variant.
func BenchmarkFig8GreedyInitAttr(b *testing.B) {
	var greedy, random float64
	for i := 0; i < b.N; i++ {
		_, attr, err := experiments.RunFig78([]string{"cora"}, []int{1}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range attr {
			if p.Variant == "PANE" {
				greedy = p.AUC
			} else {
				random = p.AUC
			}
		}
	}
	b.ReportMetric(greedy, "greedy-AUC")
	b.ReportMetric(random, "random-AUC")
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices called out in DESIGN.md §5).

// BenchmarkAblationAPMIvsPAPMI isolates phase 1: serial APMI vs
// attribute-partitioned PAPMI at 4 threads.
func BenchmarkAblationAPMIvsPAPMI(b *testing.B) {
	g := loadBench(b, "pubmed")
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	b.Run("APMI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.APMI(p, pt, rr, rc, 0.5, 6)
		}
	})
	b.Run("PAPMI-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PAPMI(p, pt, rr, rc, 0.5, 6, 4)
		}
	})
}

// BenchmarkAblationCCDIncrementalResiduals quantifies what the dynamic
// residual maintenance of Equations (18)-(20) buys: one CCD sweep with
// incremental updates vs recomputing Sf and Sb from scratch once, the
// work a naive implementation would redo after every sweep (the per-entry
// naive variant is quadratically worse still).
func BenchmarkAblationCCDIncrementalResiduals(b *testing.B) {
	g := loadBench(b, "cora")
	f, bb := core.AffinityFromGraph(g, 0.5, 6, 1)
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Seed: 1, CCDIters: 1}
	b.Run("sweep-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SVDCCD(f, bb, cfg, 1)
		}
	})
	b.Run("residual-recompute", func(b *testing.B) {
		e := core.SVDCCD(f, bb, cfg, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The full recompute a maintenance-free CCD would need after
			// every coordinate pass.
			sf := mat.MulBT(e.Xf, e.Y)
			sf.Sub(f)
			sb := mat.MulBT(e.Xb, e.Y)
			sb.Sub(bb)
		}
	})
}

// BenchmarkAblationRandSVDPowerIters sweeps the subspace power-iteration
// count, the knob trading initialization quality for time.
func BenchmarkAblationRandSVDPowerIters(b *testing.B) {
	g := loadBench(b, "cora")
	f, _ := core.AffinityFromGraph(g, 0.5, 6, 1)
	for _, q := range []int{0, 1, 3, 6} {
		b.Run(benchName("q", q), func(b *testing.B) {
			var relErr float64
			for i := 0; i < b.N; i++ {
				res := svd.RandSVD(f, 32, q, rand.New(rand.NewSource(1)), 1)
				diff := res.Reconstruct()
				diff.Sub(f)
				relErr = diff.FrobeniusNorm() / f.FrobeniusNorm()
			}
			b.ReportMetric(relErr, "rel-err")
		})
	}
}

// BenchmarkAblationSpMMThreads sweeps the SpMM worker count — the phase-1
// scaling primitive underlying Figure 4a.
func BenchmarkAblationSpMMThreads(b *testing.B) {
	g := loadBench(b, "tweibo")
	p, _ := g.Walk()
	rr, _ := g.NormalizedAttrs()
	for _, nb := range []int{1, 2, 4, 8} {
		b.Run(benchName("nb", nb), func(b *testing.B) {
			dst := mat.New(rr.Rows, rr.Cols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ParMulDenseInto(dst, rr, nb)
			}
		})
	}
}

// BenchmarkAblationLinkScorerGram verifies the Gram-matrix trick of
// Equation (22): precomputed YᵀY scoring vs the naive O(d·k) sum.
func BenchmarkAblationLinkScorerGram(b *testing.B) {
	g := loadBench(b, "cora")
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.05, Threads: 4, Seed: 1}
	e, err := core.ParallelPANE(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pairs := make([][2]int, 1000)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N), rng.Intn(g.N)}
	}
	b.Run("gram", func(b *testing.B) {
		s := core.NewLinkScorer(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var acc float64
			for _, p := range pairs {
				acc += s.Directed(p[0], p[1])
			}
			_ = acc
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var acc float64
			for _, p := range pairs {
				var s float64
				for r := 0; r < g.D; r++ {
					s += mat.Dot(e.Xf.Row(p[0]), e.Y.Row(r)) * mat.Dot(e.Xb.Row(p[1]), e.Y.Row(r))
				}
				acc += s
			}
			_ = acc
		}
	})
}

// BenchmarkKernelSpMM is the raw sparse kernel microbench: P·X on the
// largest stand-in.
func BenchmarkKernelSpMM(b *testing.B) {
	g := loadBench(b, "mag")
	p, _ := g.Walk()
	x := mat.New(g.N, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	dst := mat.New(g.N, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParMulDenseInto(dst, x, 8)
	}
	b.SetBytes(int64(p.NNZ() * 64 * 8))
}

// BenchmarkEndToEndMAG is the headline scalability number: full parallel
// PANE on the largest stand-in (the MAG surrogate).
func BenchmarkEndToEndMAG(b *testing.B) {
	g := loadBench(b, "mag")
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 8, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParallelPANE(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSplits times the evaluation substrate itself so harness
// overhead is visible next to algorithm cost.
func BenchmarkEvalSplits(b *testing.B) {
	g := loadBench(b, "cora")
	b.Run("SplitLinks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.SplitLinks(g, 0.3, rand.New(rand.NewSource(int64(i))))
		}
	})
	b.Run("SplitAttributes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.SplitAttributes(g, 0.8, rand.New(rand.NewSource(int64(i))))
		}
	})
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func benchNameF(k string, v float64) string {
	switch {
	case v >= 1:
		return benchName(k, int(v))
	default:
		// Render 0.015 as 0p015 to keep bench names flag-safe.
		s := make([]byte, 0, 8)
		frac := v
		s = append(s, '0', 'p')
		for i := 0; i < 4 && frac > 1e-9; i++ {
			frac *= 10
			d := int(frac)
			s = append(s, byte('0'+d))
			frac -= float64(d)
		}
		return k + "=" + string(s)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

var _ = sparse.Entry{} // keep the substrate import explicit in the harness
