package pane_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/engine"
	"pane/internal/server"
)

// scrapeMetrics fetches /metrics over real TCP and parses every sample
// line into series -> value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsEndToEnd boots the full serving stack on a live listener,
// drives query and update traffic, and scrapes /metrics twice: every
// core serving-path series must be present, and the counters among them
// must be monotone between scrapes.
func TestMetricsEndToEnd(t *testing.T) {
	g, err := datagen.Generate(datagen.Config{
		Name: "obsint", N: 500, AvgOutDeg: 5, D: 30, AttrsPer: 3,
		Communities: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Train(g, core.Config{K: 16, Alpha: 0.5, Eps: 0.1, Seed: 1},
		engine.WithIndex(engine.IndexConfig{IVF: true, Quantize: true, Shards: 2}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng))
	defer ts.Close()

	traffic := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, mode := range []string{"exact", "ivf", "sq8"} {
				resp, err := http.Get(fmt.Sprintf("%s/top-links?src=%d&k=5&mode=%s", ts.URL, i%g.N, mode))
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("top-links %s status %d", mode, resp.StatusCode)
				}
			}
			resp, err := http.Post(ts.URL+"/update/edges", "application/json",
				strings.NewReader(fmt.Sprintf(`{"edges":[{"src":%d,"dst":%d}]}`, i%g.N, (i+7)%g.N)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("update status %d", resp.StatusCode)
			}
		}
	}

	traffic(3)
	eng.WaitForIndex()
	first := scrapeMetrics(t, ts.URL)
	core := []string{
		`pane_http_requests_total{code="200",route="/top-links"}`,
		`pane_http_requests_total{code="200",route="/update/edges"}`,
		`pane_http_request_duration_seconds_count{route="/top-links"}`,
		`pane_topk_requests_total{backend="exact",route="/top-links"}`,
		`pane_topk_requests_total{backend="ivf",route="/top-links"}`,
		`pane_topk_requests_total{backend="sq8",route="/top-links"}`,
		`pane_query_stage_duration_seconds_count{stage="fanout"}`,
		`pane_query_stage_duration_seconds_count{stage="merge"}`,
		// Single-edge deltas on a 500-node graph sit far below the 0.2
		// dirty-fraction threshold, so the updates and their index cycles
		// take the incremental path; the full build cycles are the
		// construction-time ones.
		`pane_updates_total{path="incremental"}`,
		`pane_index_build_cycles_total{kind="full"}`,
		`pane_index_build_cycles_total{kind="incremental"}`,
		"pane_model_version",
	}
	for _, series := range core {
		if v, ok := first[series]; !ok || v <= 0 {
			t.Fatalf("core series %s absent or zero (%v) after traffic", series, v)
		}
	}

	traffic(2)
	eng.WaitForIndex()
	second := scrapeMetrics(t, ts.URL)
	for _, series := range core {
		if second[series] < first[series] {
			t.Fatalf("series %s went backwards: %v -> %v", series, first[series], second[series])
		}
	}
	// Strict growth where traffic guarantees it.
	for _, series := range []string{
		`pane_http_requests_total{code="200",route="/top-links"}`,
		`pane_updates_total{path="incremental"}`,
		"pane_model_version",
	} {
		if second[series] <= first[series] {
			t.Fatalf("series %s did not grow under traffic: %v -> %v", series, first[series], second[series])
		}
	}
}
