// Link prediction on a citation-network stand-in: remove 30% of the
// edges, embed the residual graph with PANE and with the NRP baseline,
// and compare AUC/AP — the §5.3 protocol end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pane/internal/baselines"
	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
)

func main() {
	g, info, err := dataset.Load("cora")
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("dataset cora (stand-in): n=%d m=%d d=%d\n", st.Nodes, st.Edges, st.Attrs)

	rng := rand.New(rand.NewSource(7))
	split := eval.SplitLinks(g, 0.3, rng)
	fmt.Printf("removed %d edges for testing, %d residual edges for training\n",
		len(split.TestPos), split.Train.M())

	// PANE.
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
	start := time.Now()
	emb, err := core.ParallelPANE(split.Train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	paneTime := time.Since(start)
	scorer := core.NewLinkScorer(emb)
	score := scorer.Directed
	if !info.Directed {
		score = scorer.Undirected
	}
	paneAUC, paneAP := split.Evaluate(score)

	// NRP: the strongest homogeneous (attribute-blind) competitor.
	nrpCfg := baselines.DefaultNRPConfig()
	nrpCfg.K = 64
	nrpCfg.NB = 4
	start = time.Now()
	nrp := baselines.NRP(split.Train, nrpCfg)
	nrpTime := time.Since(start)
	nrpScore := nrp.Directed
	if !info.Directed {
		nrpScore = nrp.Undirected
	}
	nrpAUC, nrpAP := split.Evaluate(nrpScore)

	fmt.Printf("\n%-8s %8s %8s %10s\n", "method", "AUC", "AP", "time")
	fmt.Printf("%-8s %8.3f %8.3f %9.2fs\n", "PANE", paneAUC, paneAP, paneTime.Seconds())
	fmt.Printf("%-8s %8.3f %8.3f %9.2fs\n", "NRP", nrpAUC, nrpAP, nrpTime.Seconds())
	if paneAUC > nrpAUC {
		fmt.Println("\nPANE wins: attribute affinity adds signal pure topology lacks.")
	} else {
		fmt.Println("\nNRP edges out PANE here; on attribute-rich graphs PANE usually wins (Table 5).")
	}
}
