// Node classification on a citation-network stand-in: embed the full
// graph with PANE, train a linear SVM on half the labelled nodes, and
// report micro/macro F1 on the rest — the §5.4 protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
	"pane/internal/mat"
	"pane/internal/ml"
)

func main() {
	g, _, err := dataset.Load("pubmed")
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("dataset pubmed (stand-in): n=%d m=%d d=%d labels=%d\n",
		st.Nodes, st.Edges, st.Attrs, st.LabelKinds)

	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The classification features: normalized concat(Xf, Xb), as in §5.4.
	feats := emb.ClassifierFeatures()

	for _, frac := range []float64{0.1, 0.5, 0.9} {
		rng := rand.New(rand.NewSource(11))
		split := eval.SplitNodes(g, frac, rng)
		trainX := mat.New(len(split.TrainIdx), feats.Cols)
		trainY := make([][]int, len(split.TrainIdx))
		for i, v := range split.TrainIdx {
			copy(trainX.Row(i), feats.Row(v))
			trainY[i] = g.Labels[v]
		}
		svm := ml.TrainOneVsRest(trainX, trainY, ml.DefaultSVMConfig())
		counts := eval.NewF1Counts()
		for _, v := range split.TestIdx {
			truth := g.Labels[v]
			pred := svm.PredictK(feats.Row(v), len(truth))
			counts.Add(pred, truth)
		}
		fmt.Printf("train fraction %.1f: Micro-F1 %.3f, Macro-F1 %.3f (%d train, %d test)\n",
			frac, counts.MicroF1(), counts.MacroF1(), len(split.TrainIdx), len(split.TestIdx))
	}
}
