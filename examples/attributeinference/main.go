// Attribute inference on a social-network stand-in: hide 20% of the
// node-attribute associations, embed with PANE, and rank the held-out
// associations against sampled negatives — the §5.2 protocol. This is the
// task only co-embedding methods (PANE, CAN) can do at all, because it
// needs attribute embeddings, not just node embeddings.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pane/internal/baselines"
	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
)

func main() {
	g, _, err := dataset.Load("facebook")
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("dataset facebook (stand-in): n=%d m=%d d=%d |ER|=%d\n",
		st.Nodes, st.Edges, st.Attrs, st.AttrEntries)

	rng := rand.New(rand.NewSource(3))
	split := eval.SplitAttributes(g, 0.8, rng)
	fmt.Printf("hidden %d associations; training on %d\n", len(split.TestPos), split.Train.NNZAttr())

	cfg := core.Config{K: 128, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
	emb, err := core.ParallelPANE(split.Train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	paneAUC, paneAP := split.Evaluate(emb.AttrScore)

	can := baselines.CANLite(split.Train, baselines.CANLiteConfig{K: 128, Hops: 2, Seed: 1})
	canAUC, canAP := split.Evaluate(can.AttrScore)

	bla := baselines.RunBLA(split.Train, baselines.DefaultBLAConfig())
	blaAUC, blaAP := split.Evaluate(bla.AttrScore)

	fmt.Printf("\n%-10s %8s %8s\n", "method", "AUC", "AP")
	fmt.Printf("%-10s %8.3f %8.3f\n", "PANE", paneAUC, paneAP)
	fmt.Printf("%-10s %8.3f %8.3f\n", "CAN(lite)", canAUC, canAP)
	fmt.Printf("%-10s %8.3f %8.3f\n", "BLA", blaAUC, blaAP)

	// Show a concrete prediction: the strongest inferred missing
	// attribute for node 0.
	bestR, bestS := -1, 0.0
	for r := 0; r < g.D; r++ {
		if split.Train.Attr.At(0, r) != 0 {
			continue
		}
		if s := emb.AttrScore(0, r); s > bestS {
			bestR, bestS = r, s
		}
	}
	fmt.Printf("\nstrongest inferred missing attribute for node 0: attr %d (score %.3f)\n", bestR, bestS)
}
