// Dynamic updates: the paper's §7 future-work direction (time-varying
// graphs) implemented as warm-start re-embedding. A graph evolves by
// gaining edges; instead of retraining from scratch, UpdateEmbedding
// recomputes the cheap affinity phase and refines the *previous*
// embedding with a couple of CCD sweeps.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/graph"
)

func main() {
	g, _, err := dataset.Load("cora")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}

	start := time.Now()
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	fmt.Printf("initial embedding: %.2fs (n=%d, m=%d)\n", coldTime.Seconds(), g.N, g.M())

	// The graph evolves: 1% new random edges arrive.
	rng := rand.New(rand.NewSource(42))
	edges := allEdges(g)
	for i := 0; i < g.M()/100; i++ {
		edges = append(edges, graph.Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)})
	}
	g2, err := graph.New(g.N, g.D, edges, allAttrs(g), g.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph evolved: %d -> %d edges\n", g.M(), g2.M())

	// Warm update: 2 CCD sweeps from the previous solution.
	start = time.Now()
	warm, err := core.UpdateEmbedding(g2, emb, cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	warmTime := time.Since(start)

	// Cold retrain for comparison.
	start = time.Now()
	cold, err := core.ParallelPANE(g2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(start)

	f, b := core.AffinityFromGraph(g2, cfg.Alpha, cfg.Iterations(), 1)
	fmt.Printf("\n%-14s %10s %14s\n", "variant", "time", "objective")
	fmt.Printf("%-14s %9.2fs %14.1f\n", "warm update", warmTime.Seconds(), core.Objective(warm, f, b))
	fmt.Printf("%-14s %9.2fs %14.1f\n", "cold retrain", retrainTime.Seconds(), core.Objective(cold, f, b))
	fmt.Printf("%-14s %10s %14.1f\n", "stale (no upd)", "-", core.Objective(emb, f, b))
	fmt.Printf("\nwarm update reaches retrain-level fit in %.0f%% of the time\n",
		100*warmTime.Seconds()/retrainTime.Seconds())
}

func allEdges(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			out = append(out, graph.Edge{Src: u, Dst: int(v)})
		}
	}
	return out
}

func allAttrs(g *graph.Graph) []graph.AttrEntry {
	var out []graph.AttrEntry
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		for k, c := range cols {
			out = append(out, graph.AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	return out
}
