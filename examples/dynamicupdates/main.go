// Dynamic updates through the lifecycle engine: a model is trained once,
// then kept live while the graph evolves — each batch of arriving edges
// is applied as a warm-start update (a couple of CCD sweeps from the
// previous solution instead of a retrain), bumping the model version.
// The example finishes with the full serving lifecycle: snapshot the live
// model to a single bundle file, restore it, and verify the restored
// engine answers identically.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/engine"
	"pane/internal/graph"
)

func main() {
	g, _, err := dataset.Load("cora")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{K: 64, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}

	start := time.Now()
	eng, err := engine.Train(g, cfg,
		engine.WithUpdateSweeps(2),
		engine.WithIndex(engine.IndexConfig{IVF: true, Quantize: true, Shards: 4}))
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	fmt.Printf("trained version %d: %.2fs (n=%d, m=%d)\n",
		eng.Version(), coldTime.Seconds(), g.N, g.M())

	// The graph evolves: five batches of random edges arrive, each applied
	// as a live update against the running engine.
	rng := rand.New(rand.NewSource(42))
	const batches = 5
	perBatch := g.M() / 100 / batches
	if perBatch < 1 {
		perBatch = 1
	}
	var updTotal time.Duration
	for i := 0; i < batches; i++ {
		batch := make([]graph.Edge, perBatch)
		for j := range batch {
			batch[j] = graph.Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)}
		}
		start = time.Now()
		m, err := eng.ApplyEdges(batch)
		if err != nil {
			log.Fatal(err)
		}
		updTotal += time.Since(start)
		fmt.Printf("  +%d edges -> version %d (m=%d, %.2fs)\n",
			perBatch, m.Version, m.Graph.M(), time.Since(start).Seconds())
	}

	// Top-k queries stay live throughout: each model version gets its own
	// serving index (exact + IVF + the SQ8/IVFSQ quantized tiers), split
	// into 4 row shards that rebuild independently and concurrently
	// after an update lands. A query that
	// arrives mid-rebuild — before ALL shards have republished — is
	// answered by brute force at the current version; the response says
	// which backend ran, and the index status shows each shard's
	// generation catching up.
	eng.WaitForIndex()
	st := eng.IndexStatus()
	fmt.Printf("serving index: %d shards, per-shard generations %v\n", st.Shards, st.ShardVersions)
	// Small edge batches ride the delta pipeline: only the touched rows
	// were re-swept, and each shard refreshed (or republished) its index
	// incrementally instead of rebuilding — the counters prove it.
	fmt.Printf("update path: %d incremental refresh cycles, %d full builds, last delta %d rows\n",
		st.IncrementalRefreshes, st.FullRebuilds, st.LastDeltaRows)
	for _, mode := range []string{engine.ModeExact, engine.ModeIVF, engine.ModeSQ8, engine.ModeIVFSQ} {
		ans, err := eng.TopLinks(0, 3, mode, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-links(0) mode=%-5s -> backend=%-5s version=%d top=%v\n",
			mode, ans.Backend, ans.Version, ans.Results)
	}

	// How good is the warm-updated model? Compare against a cold retrain
	// on the final graph under the same objective.
	live := eng.Model()
	start = time.Now()
	cold, err := core.ParallelPANE(live.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	retrainTime := time.Since(start)
	f, b := core.AffinityFromGraph(live.Graph, cfg.Alpha, cfg.Iterations(), 1)
	fmt.Printf("\n%-18s %10s %14s\n", "variant", "time", "objective")
	fmt.Printf("%-18s %9.2fs %14.1f\n", "live (5 updates)", updTotal.Seconds(), core.Objective(live.Emb, f, b))
	fmt.Printf("%-18s %9.2fs %14.1f\n", "cold retrain", retrainTime.Seconds(), core.Objective(cold, f, b))
	fmt.Printf("\nwarm updates reach retrain-level fit in %.0f%% of the time\n",
		100*updTotal.Seconds()/retrainTime.Seconds())

	// Snapshot the live model and restore it: same version, same answers.
	dir, err := os.MkdirTemp("", "pane-snapshot")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.pane")
	if _, err := eng.Snapshot(path); err != nil {
		log.Fatal(err)
	}
	restored, err := engine.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	three := 3
	queries := []engine.Query{
		{Op: engine.OpLinkScore, Src: 0, Dst: 1},
		{Op: engine.OpTopAttrs, Node: 2, K: &three},
	}
	before, bv := eng.Execute(queries)
	after, av := restored.Execute(queries)
	if bv != av || *before[0].Score != *after[0].Score {
		log.Fatalf("restore mismatch: version %d vs %d, score %v vs %v",
			bv, av, *before[0].Score, *after[0].Score)
	}
	fmt.Printf("\nsnapshot -> restore: version %d preserved, scores identical\n", av)
}
