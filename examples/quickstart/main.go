// Quickstart: build a small attributed graph in memory, embed it with
// PANE, and query node-attribute affinity — the 60-second tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"pane/internal/core"
	"pane/internal/graph"
)

func main() {
	// The paper's running example: 6 nodes, 3 attributes (Figure 1).
	// Building your own graph works the same way:
	//
	//	g, err := graph.New(n, d, []graph.Edge{{Src: 0, Dst: 1}, ...},
	//	    []graph.AttrEntry{{Node: 0, Attr: 2, Weight: 1}, ...}, nil)
	g := graph.RunningExample()
	fmt.Printf("graph: %d nodes, %d edges, %d attributes, %d associations\n",
		g.N, g.M(), g.D, g.NNZAttr())

	cfg := core.Config{
		K:       8,    // each node gets a forward + backward embedding of length 4
		Alpha:   0.15, // random-walk stopping probability
		Eps:     0.001,
		Threads: 2,
		Seed:    1,
	}
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Attribute inference: how strongly does each node relate to each
	// attribute? (Equation 21: Xf[v]·Y[r] + Xb[v]·Y[r].)
	fmt.Println("\nnode-attribute affinity scores (higher = stronger):")
	for v := 0; v < g.N; v++ {
		fmt.Printf("  v%d:", v+1)
		for r := 0; r < g.D; r++ {
			fmt.Printf("  r%d=%+.2f", r+1, emb.AttrScore(v, r))
		}
		fmt.Println()
	}

	// Link prediction: which non-edges are most plausible? (Equation 22.)
	scorer := core.NewLinkScorer(emb)
	fmt.Println("\ntop directed non-edges by predicted score:")
	type cand struct {
		u, v  int
		score float64
	}
	var best cand
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if s := scorer.Directed(u, v); s > best.score {
				best = cand{u, v, s}
			}
		}
	}
	fmt.Printf("  most likely new edge: v%d -> v%d (score %.3f)\n", best.u+1, best.v+1, best.score)
}
